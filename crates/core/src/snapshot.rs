//! Immutable policy snapshots: the read side of the guard's concurrency
//! split.
//!
//! The defense sits on the hot path of every tuple served — each access
//! must look up a popularity rank (Eq. 1), `f_max`, and the update window
//! to price its delay. Doing that against mutable trackers would force a
//! lock per query. Instead the guard maintains an immutable
//! [`PolicySnapshot`] behind an `arc-swap` cell: query threads load it
//! with one atomic snapshot operation, price every returned tuple from it
//! with **zero locked work**, and record their accesses into a lock-free
//! event queue. A refresher (background thread, or any thread that trips
//! the [`SnapshotPolicy`] bounds) periodically drains the queue into the
//! authoritative per-table trackers and publishes a fresh snapshot.
//!
//! Staleness is bounded, not zero — and that is *safe* for the defense:
//! every tuple starts at the delay cap (§2.3's start-up transient), and a
//! stale snapshot only under-reports popularity, which over-charges
//! delay. An adversary cannot exploit staleness to read obscure tuples
//! faster; a legitimate user's hot tuple merely takes one refresh epoch
//! to collapse to its fast price.

use crate::access::PackedAccessDelays;
use crate::shaping::DelayShaping;
use delayguard_popularity::FrequencyTracker;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Bounded-staleness knobs for the snapshot read path.
///
/// A snapshot is considered stale — and any query thread (or the server's
/// background refresher) will rebuild it — once **either** bound is hit:
/// more than `max_pending_events` recorded accesses are waiting in the
/// queue, or the snapshot is older than `max_age_secs` of wall-clock
/// time. Tighter bounds track popularity more closely at the cost of more
/// frequent rebuilds; looser bounds amortize rebuild work over more
/// queries (the update-maintenance trade of Kara et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotPolicy {
    /// Rebuild after this many recorded-but-unapplied access events.
    pub max_pending_events: usize,
    /// Rebuild once the snapshot is this many wall-clock seconds old
    /// (only when events are pending; an idle guard never rebuilds).
    pub max_age_secs: f64,
}

impl SnapshotPolicy {
    /// Default bounds: rebuild every 4096 pending events or 50 ms,
    /// whichever comes first.
    pub fn new(max_pending_events: usize, max_age_secs: f64) -> SnapshotPolicy {
        SnapshotPolicy {
            max_pending_events,
            max_age_secs,
        }
    }
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy {
            max_pending_events: 4096,
            max_age_secs: 0.05,
        }
    }
}

/// Which implementation `execute_with_deadline` (the server hot path)
/// uses to price and record accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Price from the immutable snapshot, record via the lock-free queue:
    /// concurrent queries share no locks. Popularity is stale by at most
    /// one refresh epoch ([`SnapshotPolicy`]).
    #[default]
    Snapshot,
    /// Price and record against the live trackers under the table's shard
    /// lock: exact sequential semantics, queries on the same shard
    /// serialize. With `shards = 1` this reproduces the original global
    /// single-mutex guard — kept as the honest baseline for the
    /// `concurrent_throughput` bench.
    Locked,
}

/// One table's frozen guard statistics.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    /// Access-frequency tracker as of the snapshot.
    pub access: FrequencyTracker,
    /// Update-frequency tracker as of the snapshot.
    pub updates: FrequencyTracker,
    /// Virtual time the table first came under observation.
    pub epoch: Option<f64>,
    /// Rows held by *other* cluster nodes for this table (from replicated
    /// deltas); pricing adds this to the local cardinality so `n` in
    /// Eq. 1 is the global table size. Zero on a single node.
    pub extra_rows: u64,
    /// The access tracker flattened into a rank-indexed delay table at
    /// snapshot build time, when the guard runs a pure access-rate
    /// policy: the hot path prices from this with one binary search per
    /// tuple instead of hash probes and a `powf`. `None` when the policy
    /// is window-dependent (update-rate, hybrid) or the snapshot
    /// predates any traffic; pricing then falls back to the trackers.
    /// Delays from the pack are bit-identical to the tracker walk.
    pub packed_access: Option<PackedAccessDelays>,
}

impl TableSnapshot {
    /// The update-rate observation window at time `now` (mirrors the live
    /// guard's window arithmetic).
    pub fn window(&self, now: f64) -> f64 {
        match self.epoch {
            Some(e) => (now - e).max(1e-9),
            None => 1e-9,
        }
    }
}

/// The never-observed table: empty trackers, no epoch. Delay math on it
/// yields the start-up transient (everything at the cap), exactly like a
/// freshly inserted live guard.
pub fn empty_table_snapshot() -> Arc<TableSnapshot> {
    static EMPTY: OnceLock<Arc<TableSnapshot>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| {
        Arc::new(TableSnapshot {
            access: FrequencyTracker::no_decay(),
            updates: FrequencyTracker::no_decay(),
            epoch: None,
            extra_rows: 0,
            packed_access: None,
        })
    }))
}

/// An immutable view of every table's guard statistics, swapped in
/// atomically by the refresher. Unchanged tables share their
/// [`TableSnapshot`] `Arc` across generations, so rebuild cost is
/// proportional to what actually changed.
#[derive(Debug)]
pub struct PolicySnapshot {
    /// Per-table frozen statistics.
    pub tables: HashMap<String, Arc<TableSnapshot>>,
    /// Monotone generation counter (0 = the empty boot snapshot).
    pub version: u64,
    /// Guard-clock (wall, seconds since the guard started) build time.
    pub built_at_secs: f64,
    /// Master-mutation counter value this snapshot reflects; the guard
    /// compares it against the live counter to detect staleness from the
    /// exact/locked path.
    pub mutations_seen: u64,
    /// The delay-shaping policy this snapshot prices under (stamped from
    /// `GuardConfig::shaping` at build time, [`DelayShaping::off`] on the
    /// boot snapshot). Observational — the charge sites read the live
    /// config — but lets STATS/debug consumers tell which schedule a
    /// generation speaks.
    pub shaping: DelayShaping,
}

impl PolicySnapshot {
    /// The empty boot snapshot.
    pub fn empty() -> PolicySnapshot {
        PolicySnapshot {
            tables: HashMap::new(),
            version: 0,
            built_at_secs: 0.0,
            mutations_seen: 0,
            shaping: DelayShaping::off(),
        }
    }

    /// A table's frozen statistics, if it has ever been observed.
    pub fn table(&self, name: &str) -> Option<&Arc<TableSnapshot>> {
        self.tables.get(name)
    }

    /// Sorted names of every observed table.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Observability counters for the snapshot machinery (served by
/// `GuardedDatabase::snapshot_stats`, published as gauges by the server's
/// refresher and `delayguard_sim::guardstats`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotStats {
    /// Current snapshot generation.
    pub version: u64,
    /// Guard-clock seconds at which the snapshot was built.
    pub built_at_secs: f64,
    /// Guard-clock age of the snapshot, in seconds.
    pub age_secs: f64,
    /// Access events recorded but not yet applied to the trackers.
    pub pending_events: usize,
    /// Snapshot rebuilds performed since the guard started.
    pub rebuilds: u64,
    /// Events drained from the queue into the trackers since start.
    pub events_applied: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_prices_at_startup_transient() {
        let snap = PolicySnapshot::empty();
        assert_eq!(snap.version, 0);
        assert!(snap.table("items").is_none());
        let empty = empty_table_snapshot();
        assert_eq!(empty.window(5.0), 1e-9);
        assert_eq!(empty.access.fmax(), 0.0);
        assert!(!empty.access.contains(42));
    }

    #[test]
    fn empty_table_snapshot_is_shared() {
        let a = empty_table_snapshot();
        let b = empty_table_snapshot();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn window_mirrors_live_guard() {
        let ts = TableSnapshot {
            access: FrequencyTracker::no_decay(),
            updates: FrequencyTracker::no_decay(),
            epoch: Some(10.0),
            extra_rows: 0,
            packed_access: None,
        };
        assert_eq!(ts.window(30.0), 20.0);
        assert_eq!(ts.window(10.0), 1e-9, "clamped at epoch");
    }

    #[test]
    fn defaults_are_sane() {
        let p = SnapshotPolicy::default();
        assert!(p.max_pending_events >= 1);
        assert!(p.max_age_secs > 0.0);
        assert_eq!(ReadPath::default(), ReadPath::Snapshot);
    }
}
