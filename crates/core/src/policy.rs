//! Policy composition and per-query delay charging.

use crate::access::AccessDelayPolicy;
use crate::update::UpdateDelayPolicy;
use delayguard_popularity::FrequencyTracker;

/// Which delay scheme guards a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardPolicy {
    /// No delays (baseline for overhead measurements, Table 5's base row).
    None,
    /// Access-rate delays (§2): popular tuples fast, obscure tuples slow.
    AccessRate(AccessDelayPolicy),
    /// Update-rate delays (§3): hot tuples fast, stale-prone tuples slow.
    UpdateRate(UpdateDelayPolicy),
    /// Both schemes; each tuple pays the larger of the two delays. The
    /// paper's conclusion suggests exploiting "skew — either in access or
    /// update pattern"; the max-combine covers datasets with both.
    Hybrid(AccessDelayPolicy, UpdateDelayPolicy),
}

impl GuardPolicy {
    /// Compute the delay for one tuple.
    ///
    /// * `access` / `updates` — learned statistics for the table.
    /// * `n` — table cardinality.
    /// * `key` — the tuple's key (RowId raw).
    /// * `window_secs` — observation window for update-rate estimation.
    pub fn tuple_delay(
        &self,
        access: &FrequencyTracker,
        updates: &FrequencyTracker,
        n: u64,
        key: u64,
        window_secs: f64,
    ) -> f64 {
        match self {
            GuardPolicy::None => 0.0,
            GuardPolicy::AccessRate(p) => p.delay(access, n, key),
            GuardPolicy::UpdateRate(p) => p.delay(updates, n, key, window_secs),
            GuardPolicy::Hybrid(a, u) => {
                a.delay(access, n, key)
                    .max(u.delay(updates, n, key, window_secs))
            }
        }
    }

    /// The largest delay this policy can assign to a single tuple.
    pub fn max_tuple_delay(&self) -> f64 {
        match self {
            GuardPolicy::None => 0.0,
            GuardPolicy::AccessRate(p) => p.cap_secs,
            GuardPolicy::UpdateRate(p) => p.cap_secs,
            GuardPolicy::Hybrid(a, u) => a.cap_secs.max(u.cap_secs),
        }
    }
}

/// How a multi-tuple query is charged.
///
/// §2.1 treats "a query that returns multiple tuples ... as the aggregate
/// of multiple simple queries that return one tuple each" — i.e. the sum.
/// The per-query max is the loophole a parallel adversary exploits (§2.4),
/// kept here as an ablation (`ablation_charging` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargingModel {
    /// Sum of per-tuple delays (the paper's model).
    PerTupleSum,
    /// Maximum per-tuple delay (what an unbounded parallel attacker pays).
    PerQueryMax,
}

impl ChargingModel {
    /// Combine per-tuple delays into the query's total delay.
    pub fn combine(&self, per_tuple: impl Iterator<Item = f64>) -> f64 {
        match self {
            ChargingModel::PerTupleSum => per_tuple.sum(),
            ChargingModel::PerQueryMax => per_tuple.fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trackers() -> (FrequencyTracker, FrequencyTracker) {
        let mut access = FrequencyTracker::no_decay();
        for _ in 0..100 {
            access.record(1);
        }
        access.record(2);
        let mut updates = FrequencyTracker::no_decay();
        for _ in 0..50 {
            updates.record(3);
        }
        (access, updates)
    }

    #[test]
    fn none_is_free() {
        let (a, u) = trackers();
        let p = GuardPolicy::None;
        assert_eq!(p.tuple_delay(&a, &u, 100, 1, 10.0), 0.0);
        assert_eq!(p.max_tuple_delay(), 0.0);
    }

    #[test]
    fn access_policy_dispatch() {
        let (a, u) = trackers();
        let p = GuardPolicy::AccessRate(AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0));
        let popular = p.tuple_delay(&a, &u, 100, 1, 10.0);
        let obscure = p.tuple_delay(&a, &u, 100, 999, 10.0);
        assert!(popular < obscure);
        assert_eq!(obscure, 10.0);
    }

    #[test]
    fn update_policy_dispatch() {
        let (a, u) = trackers();
        let p = GuardPolicy::UpdateRate(UpdateDelayPolicy::new(1.0).with_cap(10.0));
        let hot = p.tuple_delay(&a, &u, 100, 3, 10.0);
        let cold = p.tuple_delay(&a, &u, 100, 999, 10.0);
        assert!(hot < cold);
        assert_eq!(cold, 10.0);
    }

    #[test]
    fn hybrid_takes_max() {
        let (a, u) = trackers();
        let ap = AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0);
        let up = UpdateDelayPolicy::new(1.0).with_cap(10.0);
        let h = GuardPolicy::Hybrid(ap, up);
        // Key 1 is access-popular but never updated: update scheme says
        // cap, access scheme says fast — hybrid charges the cap.
        let d = h.tuple_delay(&a, &u, 100, 1, 10.0);
        assert_eq!(d, 10.0);
        assert_eq!(h.max_tuple_delay(), 10.0);
    }

    #[test]
    fn charging_models() {
        let delays = [1.0, 2.0, 3.0];
        assert_eq!(
            ChargingModel::PerTupleSum.combine(delays.iter().copied()),
            6.0
        );
        assert_eq!(
            ChargingModel::PerQueryMax.combine(delays.iter().copied()),
            3.0
        );
        assert_eq!(ChargingModel::PerTupleSum.combine(std::iter::empty()), 0.0);
        assert_eq!(ChargingModel::PerQueryMax.combine(std::iter::empty()), 0.0);
    }
}
