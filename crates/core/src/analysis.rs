//! Closed-form analysis from §2.1–§2.2 and §3.1 of the paper.
//!
//! These functions reproduce the paper's equations exactly (by direct
//! summation where the paper gives a sum, by the stated closed form where
//! it gives one), so simulations can be cross-checked against theory in
//! `EXPERIMENTS.md` and the `analysis_vs_sim` integration test.

use crate::shaping::DelayShaping;
use delayguard_workload::{generalized_harmonic, power_sum};

/// Eq. 1: delay of the `i`-th most popular of `n` tuples.
pub fn delay_at_rank(n: u64, alpha: f64, beta: f64, fmax: f64, rank: u64) -> f64 {
    assert!(n > 0 && rank >= 1 && fmax > 0.0);
    (rank as f64).powf(alpha + beta) / (n as f64 * fmax)
}

/// Eq. 2: total (uncapped) delay to extract all `n` tuples.
pub fn adversary_total(n: u64, alpha: f64, beta: f64, fmax: f64) -> f64 {
    assert!(n > 0 && fmax > 0.0);
    power_sum(n, alpha + beta) / (n as f64 * fmax)
}

/// Eq. 5 inverted: the cap rank `M` at which delay reaches `dmax`.
pub fn cap_rank(n: u64, alpha: f64, beta: f64, fmax: f64, dmax: f64) -> u64 {
    assert!(n > 0 && fmax > 0.0 && dmax >= 0.0);
    let exponent = alpha + beta;
    if exponent <= 0.0 {
        return 1;
    }
    let m = (dmax * n as f64 * fmax).powf(1.0 / exponent);
    (m.ceil() as u64).clamp(1, n)
}

/// Eq. 6: total delay to extract all `n` tuples under a `dmax` cap.
pub fn adversary_total_capped(n: u64, alpha: f64, beta: f64, fmax: f64, dmax: f64) -> f64 {
    let m = cap_rank(n, alpha, beta, fmax, dmax);
    let below: f64 = (1..=m)
        .map(|i| delay_at_rank(n, alpha, beta, fmax, i).min(dmax))
        .sum();
    below + (n - m) as f64 * dmax
}

/// The exact median *request* rank for a Zipf(α) workload over `n` items:
/// the smallest `i` such that `H(i, α) ≥ H(n, α)/2`. (Eq. 3 gives its
/// asymptotics; this is the finite-n value.)
pub fn median_rank_exact(n: u64, alpha: f64) -> u64 {
    assert!(n > 0);
    let half = generalized_harmonic(n, alpha) / 2.0;
    let mut acc = 0.0;
    for i in 1..=n {
        acc += (i as f64).powf(-alpha);
        if acc >= half {
            return i;
        }
    }
    n
}

/// Asymptotic class of the median rank (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MedianRankClass {
    /// `α < 1`: `Θ(2^(1/(α-1)) · N)` — a constant fraction of N.
    LinearInN,
    /// `α = 1`: `Θ(√N)`.
    SqrtN,
    /// `α > 1`: `Θ(log N)`.
    LogN,
}

/// Classify the asymptotic regime of Eq. 3/4 for a given skew.
pub fn median_rank_class(alpha: f64) -> MedianRankClass {
    if (alpha - 1.0).abs() < 1e-9 {
        MedianRankClass::SqrtN
    } else if alpha < 1.0 {
        MedianRankClass::LinearInN
    } else {
        MedianRankClass::LogN
    }
}

/// Eq. 4 (and Eq. 7 with a cap): the adversary-to-median delay ratio,
/// computed exactly for finite `n`. This is the paper's headline quantity:
/// "orders of magnitude higher than that for legitimate user queries".
pub fn delay_ratio(n: u64, alpha: f64, beta: f64, fmax: f64, dmax: Option<f64>) -> f64 {
    let med = median_rank_exact(n, alpha);
    let d_med = match dmax {
        Some(cap) => delay_at_rank(n, alpha, beta, fmax, med).min(cap),
        None => delay_at_rank(n, alpha, beta, fmax, med),
    };
    let d_total = match dmax {
        Some(cap) => adversary_total_capped(n, alpha, beta, fmax, cap),
        None => adversary_total(n, alpha, beta, fmax),
    };
    d_total / d_med
}

/// Eq. 11/12: exact maximum stale fraction for a Zipf(α) update
/// distribution of `n` items with delay scale `c`: the fraction `S` such
/// that the `(S·N)`-th ranked item's update period equals the total
/// extraction delay. Also see [`smax_asymptotic`].
pub fn stale_fraction_exact(n: u64, alpha: f64, c: f64) -> f64 {
    assert!(n > 0 && alpha > 0.0 && c > 0.0);
    // d_total = (c/N) * sum(i^alpha) / rmax ; item i stale iff
    // 1/r_i <= d_total, i.e. i^alpha / rmax <= d_total.
    // => i_stale_max = (d_total * rmax)^(1/alpha); S = i/N.
    let d_total_rmax = (c / n as f64) * power_sum(n, alpha);
    let i_max = d_total_rmax.powf(1.0 / alpha);
    (i_max / n as f64).min(1.0)
}

/// Eq. 12: the paper's asymptotic approximation
/// `S_max ≈ (c/(1+α))^(1/α)`.
pub fn smax_asymptotic(alpha: f64, c: f64) -> f64 {
    assert!(alpha > 0.0 && c > 0.0);
    (c / (1.0 + alpha)).powf(1.0 / alpha).min(1.0)
}

/// Parallel (Sybil) attack economics (§2.4): if registration of new
/// identities is limited to one per `t_register` seconds, an adversary
/// wanting wall-clock `T_total / k` must first spend `k · t_register`
/// accumulating identities. The optimum `k` minimizes
/// `k·t_register + T_total/k`; this returns `(k_opt, best_wall_clock)`.
pub fn sybil_optimum(total_delay: f64, t_register: f64) -> (f64, f64) {
    assert!(total_delay >= 0.0 && t_register > 0.0);
    let k = (total_delay / t_register).sqrt().max(1.0);
    (k, k * t_register + total_delay / k)
}

/// The registration interval that makes a parallel attack no better than a
/// serial one by a factor `slowdown ∈ (0, 1]`: choose `t_register` so the
/// optimal parallel wall clock is at least `slowdown · total_delay`.
pub fn registration_interval_for(total_delay: f64, slowdown: f64) -> f64 {
    assert!(total_delay > 0.0 && slowdown > 0.0 && slowdown <= 1.0);
    // best wall clock = 2·sqrt(t·T)  =>  t = (slowdown·T)^2 / (4T).
    (slowdown * total_delay).powi(2) / (4.0 * total_delay)
}

// ---- cluster (sharded front door) closed forms --------------------------

/// The Eq. 2 adversary total against `nodes` *un-replicated* shards — the
/// cluster's negative control.
///
/// Rows are partitioned round-robin by popularity rank (rank `i` lives on
/// node `(i − 1) mod nodes`), the model for a hash partition uncorrelated
/// with popularity. Each node prices from its **local** view only: local
/// cardinality `m ≈ n/nodes`, local relative `f_max` (its own hottest
/// row's share of its own traffic), and local ranks. A shard-aware
/// crawler querying each row at its owner therefore pays
///
/// ```text
///   Σ_j  P(m_j, α+β) / (m_j · f_max,j),
///   f_max,j = (j+1)^(−α) / Σ_{i ≡ j (mod N)} i^(−α)
/// ```
///
/// which collapses toward `(N+1)/(2N²)` of [`adversary_total`] for
/// α = β = 1 — the Eq. 4 defeat the replicated cluster must close (its
/// merged views restore global `n`, global ranks, and global `f_max`).
pub fn sharded_unreplicated_total(n: u64, nodes: u64, alpha: f64, beta: f64) -> f64 {
    assert!(n > 0 && nodes > 0);
    let mut total = 0.0;
    for j in 0..nodes.min(n) {
        // Node j's rows are global ranks j+1, j+1+N, j+1+2N, ...
        let m = (n - j).div_ceil(nodes);
        let mut local_sum = 0.0;
        let mut i = j + 1;
        while i <= n {
            local_sum += (i as f64).powf(-alpha);
            i += nodes;
        }
        let fmax_local = ((j + 1) as f64).powf(-alpha) / local_sum;
        total += power_sum(m, alpha + beta) / (m as f64 * fmax_local);
    }
    total
}

/// Extra fractional tolerance for cross-checking a *replicated* cluster
/// campaign against the single-node closed forms (Eq. 3 / Eq. 4 with a
/// replication-lag term).
///
/// Between delta syncs a node prices from remote counts that are stale by
/// at most `lag_secs`, so any count — and hence `f_max` and every
/// `d(i)` — can be off by at most the traffic one origin adds in that
/// window relative to the warmed baseline: `rate · lag / warm_events`.
/// Campaigns assert `|sim − theory| ≤ (base_tol + this) · theory`.
pub fn replication_lag_slack(warm_events: f64, event_rate: f64, lag_secs: f64) -> f64 {
    assert!(warm_events > 0.0 && event_rate >= 0.0 && lag_secs >= 0.0);
    (event_rate * lag_secs) / warm_events
}

// ---- shaped-delay (timing side channel) closed forms ---------------------

/// Eq. 1 with the Eq. 5 cap and the [`DelayShaping`] noise term: the
/// *expected* delay the shaped pipeline charges the `i`-th ranked tuple.
/// The raw capped delay is rounded up to its geometric bucket edge and
/// the uniform jitter averages to `1 + jitter_frac/2` of the edge. With
/// shaping disabled this is exactly the raw capped Eq. 1 value.
pub fn shaped_delay_at_rank(
    n: u64,
    alpha: f64,
    beta: f64,
    fmax: f64,
    dmax: f64,
    shaping: &DelayShaping,
    rank: u64,
) -> f64 {
    shaping.expected(delay_at_rank(n, alpha, beta, fmax, rank).min(dmax))
}

/// Eq. 4's numerator re-derived with the quantization/noise term: the
/// expected total delay a crawler of all `n` tuples is charged under
/// shaping. Direct summation of [`shaped_delay_at_rank`] — quantization
/// rounds up, so this is ≥ [`adversary_total_capped`], never below.
pub fn shaped_adversary_total(
    n: u64,
    alpha: f64,
    beta: f64,
    fmax: f64,
    dmax: f64,
    shaping: &DelayShaping,
) -> f64 {
    (1..=n)
        .map(|i| shaped_delay_at_rank(n, alpha, beta, fmax, dmax, shaping, i))
        .sum()
}

/// Eq. 3's median-user delay re-derived with the noise term: the expected
/// shaped delay of the median *request* (the [`median_rank_exact`] rank
/// of the Zipf(α) workload). The honest-user inflation from shaping is
/// this value over the raw capped median delay.
pub fn shaped_median_user_delay(
    n: u64,
    alpha: f64,
    beta: f64,
    fmax: f64,
    dmax: f64,
    shaping: &DelayShaping,
) -> f64 {
    let med = median_rank_exact(n, alpha);
    shaped_delay_at_rank(n, alpha, beta, fmax, dmax, shaping, med)
}

/// The information-theoretic ceiling on rank inference under shaping: the
/// fraction of tuple pairs whose *bucket* still orders them.
///
/// Within a bucket every tuple pays the same edge and ordering is jitter
/// noise (expected pair contribution 0); only cross-bucket pairs keep
/// their true order. Kendall tau-a of a timing attack therefore cannot
/// exceed `cross_pairs / C(n, 2)` in expectation — the quantity the
/// sidechannel campaigns compare their measured tau against.
pub fn shaping_tau_ceiling(
    n: u64,
    alpha: f64,
    beta: f64,
    fmax: f64,
    dmax: f64,
    shaping: &DelayShaping,
) -> f64 {
    assert!(n >= 2);
    // Bucket sizes: ranks sharing a quantized edge.
    let mut sizes: Vec<u64> = Vec::new();
    let mut last_edge = f64::NAN;
    for i in 1..=n {
        let edge = shaping.quantize(delay_at_rank(n, alpha, beta, fmax, i).min(dmax));
        if edge == last_edge {
            *sizes.last_mut().expect("size exists when edge repeats") += 1;
        } else {
            sizes.push(1);
            last_edge = edge;
        }
    }
    let total_pairs = n as f64 * (n - 1) as f64 / 2.0;
    let within: f64 = sizes.iter().map(|&s| s as f64 * (s - 1) as f64 / 2.0).sum();
    (total_pairs - within) / total_pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_at_rank_matches_formula() {
        // N=100, alpha+beta=2, fmax=0.5: d(i) = i^2/50.
        let d = delay_at_rank(100, 1.0, 1.0, 0.5, 10);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn adversary_total_is_sum_of_ranks() {
        let n = 50;
        let (a, b, f) = (1.0, 0.5, 0.3);
        let direct: f64 = (1..=n).map(|i| delay_at_rank(n, a, b, f, i)).sum();
        assert!((adversary_total(n, a, b, f) - direct).abs() / direct < 1e-12);
    }

    #[test]
    fn capped_total_below_uncapped_and_above_floor() {
        let (n, a, b, f, cap) = (10_000u64, 1.5, 1.0, 0.4, 10.0);
        let capped = adversary_total_capped(n, a, b, f, cap);
        let uncapped = adversary_total(n, a, b, f);
        assert!(capped < uncapped);
        // At least the tail pays full cap.
        let m = cap_rank(n, a, b, f, cap);
        assert!(capped >= (n - m) as f64 * cap);
        assert!(capped <= n as f64 * cap + 1e-9);
    }

    #[test]
    fn median_rank_exact_regimes() {
        // alpha > 1: logarithmic — tiny even for a million items.
        assert!(median_rank_exact(1_000_000, 1.5) < 50);
        // alpha = 1: ~sqrt(N).
        let m = median_rank_exact(1_000_000, 1.0);
        assert!((500..5_000).contains(&m), "got {m}");
        // alpha < 1: a constant fraction of N.
        let m = median_rank_exact(1_000_000, 0.5);
        assert!(m > 100_000, "got {m}");
    }

    #[test]
    fn median_rank_classes() {
        assert_eq!(median_rank_class(0.5), MedianRankClass::LinearInN);
        assert_eq!(median_rank_class(1.0), MedianRankClass::SqrtN);
        assert_eq!(median_rank_class(1.5), MedianRankClass::LogN);
    }

    #[test]
    fn ratio_explodes_with_n_for_high_skew() {
        // Eq. 4: for alpha >= 1 the ratio grows super-linearly in N.
        let f = 0.4;
        let r_small = delay_ratio(1_000, 1.5, 1.0, f, None);
        let r_big = delay_ratio(100_000, 1.5, 1.0, f, None);
        assert!(r_big / r_small > 100.0, "{r_small} -> {r_big}");
        // And stays "orders of magnitude" even with a cap.
        let r_capped = delay_ratio(100_000, 1.5, 1.0, f, Some(10.0));
        assert!(r_capped > 1e4, "capped ratio {r_capped}");
    }

    #[test]
    fn stale_fraction_exact_close_to_asymptotic() {
        for &alpha in &[0.5, 1.0, 1.5, 2.0] {
            let c = 0.5;
            let exact = stale_fraction_exact(1_000_000, alpha, c);
            let approx = smax_asymptotic(alpha, c);
            let rel = (exact - approx).abs() / approx;
            assert!(
                rel < 0.05,
                "alpha {alpha}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn stale_fraction_monotone_in_c() {
        let s1 = stale_fraction_exact(10_000, 1.0, 0.2);
        let s2 = stale_fraction_exact(10_000, 1.0, 0.8);
        assert!(s2 > s1);
        assert!(stale_fraction_exact(10_000, 1.0, 1e9) <= 1.0);
    }

    #[test]
    fn sybil_optimum_balances_terms() {
        let (k, wall) = sybil_optimum(1_000_000.0, 100.0);
        assert!((k - 100.0).abs() < 1.0);
        assert!((wall - 20_000.0).abs() < 10.0);
        // Registering faster helps the adversary.
        let (_, wall_fast) = sybil_optimum(1_000_000.0, 1.0);
        assert!(wall_fast < wall);
    }

    #[test]
    fn registration_interval_achieves_slowdown() {
        let total = 1_000_000.0;
        for slowdown in [0.1, 0.5, 1.0] {
            let t = registration_interval_for(total, slowdown);
            let (_, wall) = sybil_optimum(total, t);
            assert!(
                wall >= slowdown * total * 0.999,
                "slowdown {slowdown}: wall {wall}"
            );
        }
    }

    #[test]
    fn one_shard_is_the_single_node_total() {
        let (n, a, b) = (1100u64, 1.0, 1.0);
        let fmax = 1.0 / generalized_harmonic(n, a);
        let single = adversary_total(n, a, b, fmax);
        let sharded = sharded_unreplicated_total(n, 1, a, b);
        assert!((sharded - single).abs() / single < 1e-12);
    }

    #[test]
    fn unreplicated_shards_defeat_the_adversary_total() {
        // The campaign's parameters: n = 1100, α = β = 1, 4 nodes.
        let (n, a, b) = (1100u64, 1.0, 1.0);
        let single = sharded_unreplicated_total(n, 1, a, b);
        let four = sharded_unreplicated_total(n, 4, a, b);
        let ratio = four / single;
        // α = β = 1 collapses toward (N+1)/(2N²) ≈ 0.156 of the total.
        assert!(
            (0.10..0.20).contains(&ratio),
            "expected the Eq. 4 defeat, got ratio {ratio}"
        );
        // More shards, bigger defeat.
        let eight = sharded_unreplicated_total(n, 8, a, b);
        assert!(eight < four && four < single);
    }

    #[test]
    fn unreplicated_total_handles_uneven_and_degenerate_splits() {
        // n not divisible by nodes still covers every rank exactly once.
        let direct: f64 = sharded_unreplicated_total(10, 3, 1.0, 1.0);
        assert!(direct.is_finite() && direct > 0.0);
        // More nodes than rows degenerates to one row per node, each
        // priced as its own universe: m = 1, fmax = 1, d = 1.
        let tiny = sharded_unreplicated_total(3, 8, 1.0, 1.0);
        assert!((tiny - 3.0).abs() < 1e-12, "got {tiny}");
    }

    #[test]
    fn shaped_forms_reduce_to_raw_when_off() {
        let (n, a, b) = (256u64, 1.0, 1.0);
        let fmax = 1.0 / generalized_harmonic(n, a);
        let cap = 2000.0;
        let off = DelayShaping::off();
        let raw_total = adversary_total_capped(n, a, b, fmax, cap);
        assert!((shaped_adversary_total(n, a, b, fmax, cap, &off) - raw_total).abs() < 1e-9);
        let med = median_rank_exact(n, a);
        let raw_med = delay_at_rank(n, a, b, fmax, med).min(cap);
        assert!((shaped_median_user_delay(n, a, b, fmax, cap, &off) - raw_med).abs() < 1e-12);
        // Unshaped, every pair of distinct raw delays stays ordered.
        assert!((shaping_tau_ceiling(n, a, b, fmax, cap, &off) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shaping_only_raises_prices() {
        let (n, a, b) = (256u64, 1.0, 1.0);
        let fmax = 1.0 / generalized_harmonic(n, a);
        let cap = 2000.0;
        let s = DelayShaping::new(2000.0, 400.0, 0.1, 7);
        assert!(
            shaped_adversary_total(n, a, b, fmax, cap, &s)
                > adversary_total_capped(n, a, b, fmax, cap)
        );
        for rank in [1, 13, 100, 256] {
            let raw = delay_at_rank(n, a, b, fmax, rank).min(cap);
            assert!(shaped_delay_at_rank(n, a, b, fmax, cap, &s, rank) >= raw);
        }
    }

    #[test]
    fn sidechannel_geometry_collapses_the_tau_ceiling() {
        // The campaign's world: n = 256, α = β = 1, cap above the max raw
        // delay, two-bucket geometry (edges 2000 and 5). The top bucket
        // holds all but the hottest handful of ranks, so almost every
        // pair becomes a tie.
        let (n, a, b) = (256u64, 1.0, 1.0);
        let fmax = 1.0 / generalized_harmonic(n, a);
        let cap = 2000.0;
        let s = DelayShaping::new(2000.0, 400.0, 0.1, 7);
        let ceiling = shaping_tau_ceiling(n, a, b, fmax, cap, &s);
        assert!(
            ceiling < 0.12,
            "tau ceiling {ceiling} too high for the campaign's near-chance band"
        );
        // Sanity: the unshaped world keeps full rank information.
        assert!(shaping_tau_ceiling(n, a, b, fmax, cap, &DelayShaping::off()) > 0.999);
    }

    #[test]
    fn replication_lag_slack_scales_linearly() {
        assert_eq!(replication_lag_slack(1e6, 0.0, 30.0), 0.0);
        let s1 = replication_lag_slack(1e6, 100.0, 5.0);
        let s2 = replication_lag_slack(1e6, 100.0, 10.0);
        assert!((s2 - 2.0 * s1).abs() < 1e-15);
        assert!(s1 > 0.0 && s1 < 0.01);
    }
}
