//! Cluster replication units: the state one node ships to its peers so
//! that pricing converges cluster-wide.
//!
//! A cluster node prices `d(i)` (Eq. 1) from its *merged* view: its own
//! popularity trackers plus the latest [`TableDelta`] received from every
//! peer. Deltas are **cumulative full-state summaries**, not increments —
//! each carries the origin's complete decay-normalized counts and a
//! monotone `seq`, and the receiver keeps only the newest per origin
//! (replace-if-newer). That makes application commutative and idempotent
//! by construction: any interleaving of deltas from different origins, in
//! any order, with arbitrary duplication, converges to the same merged
//! state — the property the delta-sync protocol leans on when links
//! reorder, drop, or replay frames.
//!
//! Counts travel in the tracker's decay-*normalized* form (see
//! `FrequencyTracker::export_counts`): the receiver folds them at its own
//! current decay weight, so two nodes whose decay clocks ticked different
//! numbers of times still agree on relative popularity, and the
//! inflated-increment/rescale arithmetic stays exact on both sides.

use crate::gatekeeper::GateDelta;

/// Bit marking a tracker key as remote-originated (top bit of the key
/// space; local `RowId`s are small sequential integers nowhere near it).
pub const REMOTE_KEY_TAG: u64 = 1 << 63;

/// Bits of per-origin key space under the tag (origin occupies the 16
/// bits below the tag bit).
pub const REMOTE_KEY_BITS: u32 = 47;

/// Namespace a remote origin's row key into the local tracker key space.
///
/// Physical `RowId`s are node-local and collide across nodes (every node
/// numbers its rows from zero), so a peer's row `k` folds into the merged
/// tracker under a tagged key: tag bit, then the 16-bit origin, then the
/// low 47 bits of `k`. Local rows keep their raw keys, so the pricing
/// lookup for a locally served tuple needs no translation, while remote
/// rows still occupy rank slots in the merged distribution.
pub fn tag_remote_key(origin: u16, key: u64) -> u64 {
    REMOTE_KEY_TAG | ((origin as u64) << REMOTE_KEY_BITS) | (key & ((1 << REMOTE_KEY_BITS) - 1))
}

/// Whether a tracker key is a remote fold (tagged) rather than a local
/// physical row.
pub fn is_remote_key(key: u64) -> bool {
    key & REMOTE_KEY_TAG != 0
}

/// One table's cumulative popularity state as originated by one node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableDelta {
    /// `(row key, decay-normalized access count)`, sorted by key,
    /// covering every row the origin tracks (including zero-count rows,
    /// which still occupy rank slots).
    pub accesses: Vec<(u64, f64)>,
    /// `(row key, decay-normalized update count)`, sorted by key.
    pub updates: Vec<(u64, f64)>,
    /// Physical rows the origin holds for this table; receivers add this
    /// to their local cardinality so `n` in Eq. 1 is the *global* table
    /// size.
    pub rows: u64,
    /// Virtual time the table first saw traffic at the origin (merged by
    /// minimum, so the update window spans the cluster's observation).
    pub epoch: Option<f64>,
}

/// A full replication unit: everything one node has locally originated,
/// stamped with a monotone sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaDelta {
    /// Originating node (also the gatekeeper charge-log origin).
    pub origin: u16,
    /// Monotone per-origin sequence; receivers keep the highest seen and
    /// discard older or duplicate deltas (idempotence under replay).
    pub seq: u64,
    /// Per-table cumulative state, sorted by table name.
    pub tables: Vec<(String, TableDelta)>,
    /// Gatekeeper charge logs (user + /24 buckets), merged CRDT-style on
    /// the receiving front door.
    pub gate: GateDelta,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_tagging_partitions_key_space() {
        assert!(!is_remote_key(0));
        assert!(!is_remote_key(123_456));
        let t = tag_remote_key(3, 42);
        assert!(is_remote_key(t));
        // Distinct origins never collide on the same raw key.
        assert_ne!(tag_remote_key(1, 42), tag_remote_key(2, 42));
        // Distinct raw keys under one origin never collide.
        assert_ne!(tag_remote_key(1, 1), tag_remote_key(1, 2));
        // Tagged keys never collide with plausible local row ids.
        assert_ne!(tag_remote_key(0, 0) & REMOTE_KEY_TAG, 0);
    }

    #[test]
    fn tag_is_injective_over_origin_and_low_bits() {
        let mut seen = std::collections::HashSet::new();
        for origin in [0u16, 1, 2, 255, u16::MAX] {
            for key in [0u64, 1, 7, 1 << 20, (1 << REMOTE_KEY_BITS) - 1] {
                assert!(seen.insert(tag_remote_key(origin, key)));
            }
        }
    }
}
