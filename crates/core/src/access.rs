//! Access-rate delay policy (paper §2.1–§2.3).
//!
//! Implements Eq. 1 with the Eq. 5 cap:
//!
//! ```text
//! d(i) = min( d_max,  (1/N) · i^(α+β) / f_max )
//! ```
//!
//! where `i` is the tuple's popularity rank (1 = most popular), `N` the
//! relation size, `f_max` the relative frequency of the most popular
//! tuple, `α` the assumed skew of the workload, and `β` the operator's
//! aggressiveness knob ("chosen to balance the desired penalty imposed on
//! an extraction attack with the undesirable delays to legitimate users").
//!
//! Start-up transients (§2.3) fall out naturally: before any counts exist
//! `f_max = 0`, every rank is "last", and all delays sit at the cap; as the
//! distribution is learned, delays of popular items collapse toward zero.

use delayguard_popularity::FrequencyTracker;

/// How `f_max` is estimated from learned counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FmaxMode {
    /// §2.3 literally: the (decayed) top count "normalized by a global
    /// count of all requests". Under decay this shrinks as history is
    /// forgotten, inflating all delays — the behaviour behind the
    /// decay-rate sweeps of Tables 3–4.
    #[default]
    GlobalRequests,
    /// Decay-aware: top count over the *decayed* total; the mathematically
    /// self-consistent relative frequency. Kept as an ablation
    /// (`ablation_decay` bench).
    DecayedTotal,
    /// The (decayed) top count itself, unnormalized. Reading Eq. 1's
    /// `f_max` as "the frequency with which the most popular item is
    /// requested" in *absolute events* rather than as a relative
    /// frequency. The paper's box-office experiment (Table 4) is only
    /// consistent with this reading; see EXPERIMENTS.md.
    RawCount,
}

/// Parameters of the access-rate delay policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessDelayPolicy {
    /// Assumed Zipf parameter of the legitimate workload (`α`).
    pub alpha: f64,
    /// Penalty exponent (`β`): higher hurts the adversary more.
    pub beta: f64,
    /// Maximum delay added to any single tuple, in seconds (`d_max`).
    pub cap_secs: f64,
    /// `f_max` estimation mode.
    pub fmax_mode: FmaxMode,
}

impl AccessDelayPolicy {
    /// A policy with the paper's default 10-second cap.
    pub fn new(alpha: f64, beta: f64) -> AccessDelayPolicy {
        AccessDelayPolicy {
            alpha,
            beta,
            cap_secs: 10.0,
            fmax_mode: FmaxMode::GlobalRequests,
        }
    }

    /// Override the `f_max` estimation mode.
    pub fn with_fmax_mode(mut self, mode: FmaxMode) -> AccessDelayPolicy {
        self.fmax_mode = mode;
        self
    }

    /// The `f_max` estimate this policy reads from a tracker.
    pub fn fmax_of(&self, tracker: &FrequencyTracker) -> f64 {
        match self.fmax_mode {
            FmaxMode::GlobalRequests => tracker.fmax_global(),
            FmaxMode::DecayedTotal => tracker.fmax(),
            FmaxMode::RawCount => tracker.max_count(),
        }
    }

    /// Override the cap (Table 2 sweeps 0.1 s – 100 s). `f64::INFINITY`
    /// disables capping (the uncapped Eq. 1 scheme of §2.1).
    pub fn with_cap(mut self, cap_secs: f64) -> AccessDelayPolicy {
        assert!(cap_secs >= 0.0, "cap must be non-negative");
        self.cap_secs = cap_secs;
        self
    }

    /// The uncapped Eq. 1 delay for popularity rank `rank` in a relation of
    /// `n` tuples whose most popular tuple has relative frequency `fmax`.
    pub fn raw_delay(&self, n: u64, rank: usize, fmax: f64) -> f64 {
        if n == 0 || fmax <= 0.0 {
            return f64::INFINITY; // nothing learned yet: treat as most obscure
        }
        (rank as f64).powf(self.alpha + self.beta) / (n as f64 * fmax)
    }

    /// The capped delay for a rank (Eq. 5).
    pub fn delay_for_rank(&self, n: u64, rank: usize, fmax: f64) -> f64 {
        self.raw_delay(n, rank, fmax).min(self.cap_secs)
    }

    /// The capped delay for a concrete tuple given learned statistics.
    /// A key the tracker has never seen is treated as the least popular
    /// tuple of the relation (rank `n`): the tracker only knows about the
    /// keys it has observed, but the relation has `n` tuples.
    pub fn delay(&self, tracker: &FrequencyTracker, n: u64, key: u64) -> f64 {
        let fmax = self.fmax_of(tracker);
        let rank = if tracker.contains(key) {
            tracker.rank(key)
        } else {
            n as usize
        };
        self.delay_for_rank(n, rank, fmax)
    }

    /// The cap rank `M` (Eq. 5): the smallest rank whose uncapped delay
    /// meets the cap. Ranks `>= M` are all charged `cap_secs`.
    pub fn cap_rank(&self, n: u64, fmax: f64) -> u64 {
        if fmax <= 0.0 || n == 0 {
            return 1; // everything capped during start-up
        }
        let exponent = self.alpha + self.beta;
        if exponent <= 0.0 {
            return 1;
        }
        let m = (self.cap_secs * n as f64 * fmax).powf(1.0 / exponent);
        (m.ceil() as u64).clamp(1, n)
    }

    /// Total delay an adversary pays to extract all `n` tuples with the
    /// *learned* statistics in `tracker` (each tuple charged once).
    /// Untracked tuples (never requested) are charged the cap, matching the
    /// paper's method of "examining the access counts after the trace was
    /// replayed".
    pub fn adversary_total(&self, tracker: &FrequencyTracker, n: u64) -> f64 {
        let fmax = self.fmax_of(tracker);
        let mut total = 0.0;
        let mut seen = 0u64;
        for (key, _) in tracker.iter() {
            total += self.delay_for_rank(n, tracker.rank(key), fmax);
            seen += 1;
        }
        debug_assert!(seen <= n, "tracker holds more keys than the relation");
        total + (n.saturating_sub(seen)) as f64 * self.cap_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn learned_tracker() -> FrequencyTracker {
        // Keys 0..10 with counts 2^(10-k): key 0 most popular.
        let mut t = FrequencyTracker::no_decay();
        for key in 0..10u64 {
            for _ in 0..(1u64 << (10 - key)) {
                t.record(key);
            }
        }
        t
    }

    #[test]
    fn popular_items_get_short_delays() {
        let t = learned_tracker();
        let p = AccessDelayPolicy::new(1.0, 1.0);
        let d_popular = p.delay(&t, 10, 0);
        let d_unpopular = p.delay(&t, 10, 9);
        assert!(d_popular < d_unpopular);
        // Rank 1, alpha+beta=2, fmax ~ 0.5: d = 1/(10*0.5) = 0.2.
        assert!((d_popular - 1.0 / (10.0 * t.fmax())).abs() < 1e-9);
    }

    #[test]
    fn unseen_tuple_pays_cap() {
        let t = learned_tracker();
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(5.0);
        assert_eq!(p.delay(&t, 1000, 999_999), 5.0);
    }

    #[test]
    fn startup_transient_all_capped() {
        let t = FrequencyTracker::no_decay();
        let p = AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0);
        assert_eq!(p.delay(&t, 100, 0), 10.0);
        assert_eq!(p.cap_rank(100, t.fmax()), 1);
    }

    #[test]
    fn delay_monotone_in_rank() {
        let p = AccessDelayPolicy::new(1.5, 0.5).with_cap(f64::INFINITY);
        let mut last = 0.0;
        for rank in 1..100 {
            let d = p.delay_for_rank(10_000, rank, 0.3);
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn cap_rank_splits_capped_from_uncapped() {
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(1.0);
        let n = 10_000u64;
        let fmax = 0.2;
        let m = p.cap_rank(n, fmax);
        assert!(m > 1 && m < n);
        // Just below M: uncapped. At/above M: capped.
        assert!(p.raw_delay(n, (m - 1) as usize, fmax) < 1.0 + 1e-9);
        assert!(p.raw_delay(n, (m + 1) as usize, fmax) >= 1.0);
        assert_eq!(p.delay_for_rank(n, (m + 1) as usize, fmax), 1.0);
    }

    #[test]
    fn higher_beta_hurts_adversary_more() {
        let t = learned_tracker();
        let lo = AccessDelayPolicy::new(1.0, 0.5).with_cap(1e9);
        let hi = AccessDelayPolicy::new(1.0, 2.0).with_cap(1e9);
        assert!(hi.adversary_total(&t, 1000) > lo.adversary_total(&t, 1000));
    }

    #[test]
    fn adversary_total_charges_unseen_at_cap() {
        let t = learned_tracker(); // 10 tracked keys
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0);
        let total = p.adversary_total(&t, 1_000);
        // 990 unseen keys at the 10 s cap dominate.
        assert!(total >= 9_900.0);
        assert!(total <= 10_000.0 + 1.0);
    }

    #[test]
    fn zero_cap_disables_delays() {
        let t = learned_tracker();
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(0.0);
        assert_eq!(p.delay(&t, 10, 0), 0.0);
        assert_eq!(p.adversary_total(&t, 100), 0.0);
    }
}
