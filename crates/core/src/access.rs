//! Access-rate delay policy (paper §2.1–§2.3).
//!
//! Implements Eq. 1 with the Eq. 5 cap:
//!
//! ```text
//! d(i) = min( d_max,  (1/N) · i^(α+β) / f_max )
//! ```
//!
//! where `i` is the tuple's popularity rank (1 = most popular), `N` the
//! relation size, `f_max` the relative frequency of the most popular
//! tuple, `α` the assumed skew of the workload, and `β` the operator's
//! aggressiveness knob ("chosen to balance the desired penalty imposed on
//! an extraction attack with the undesirable delays to legitimate users").
//!
//! Start-up transients (§2.3) fall out naturally: before any counts exist
//! `f_max = 0`, every rank is "last", and all delays sit at the cap; as the
//! distribution is learned, delays of popular items collapse toward zero.

use delayguard_popularity::FrequencyTracker;

/// How `f_max` is estimated from learned counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FmaxMode {
    /// §2.3 literally: the (decayed) top count "normalized by a global
    /// count of all requests". Under decay this shrinks as history is
    /// forgotten, inflating all delays — the behaviour behind the
    /// decay-rate sweeps of Tables 3–4.
    #[default]
    GlobalRequests,
    /// Decay-aware: top count over the *decayed* total; the mathematically
    /// self-consistent relative frequency. Kept as an ablation
    /// (`ablation_decay` bench).
    DecayedTotal,
    /// The (decayed) top count itself, unnormalized. Reading Eq. 1's
    /// `f_max` as "the frequency with which the most popular item is
    /// requested" in *absolute events* rather than as a relative
    /// frequency. The paper's box-office experiment (Table 4) is only
    /// consistent with this reading; see EXPERIMENTS.md.
    RawCount,
}

/// Parameters of the access-rate delay policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessDelayPolicy {
    /// Assumed Zipf parameter of the legitimate workload (`α`).
    pub alpha: f64,
    /// Penalty exponent (`β`): higher hurts the adversary more.
    pub beta: f64,
    /// Maximum delay added to any single tuple, in seconds (`d_max`).
    pub cap_secs: f64,
    /// `f_max` estimation mode.
    pub fmax_mode: FmaxMode,
}

impl AccessDelayPolicy {
    /// A policy with the paper's default 10-second cap.
    pub fn new(alpha: f64, beta: f64) -> AccessDelayPolicy {
        AccessDelayPolicy {
            alpha,
            beta,
            cap_secs: 10.0,
            fmax_mode: FmaxMode::GlobalRequests,
        }
    }

    /// Override the `f_max` estimation mode.
    pub fn with_fmax_mode(mut self, mode: FmaxMode) -> AccessDelayPolicy {
        self.fmax_mode = mode;
        self
    }

    /// The `f_max` estimate this policy reads from a tracker.
    pub fn fmax_of(&self, tracker: &FrequencyTracker) -> f64 {
        match self.fmax_mode {
            FmaxMode::GlobalRequests => tracker.fmax_global(),
            FmaxMode::DecayedTotal => tracker.fmax(),
            FmaxMode::RawCount => tracker.max_count(),
        }
    }

    /// Override the cap (Table 2 sweeps 0.1 s – 100 s). `f64::INFINITY`
    /// disables capping (the uncapped Eq. 1 scheme of §2.1).
    pub fn with_cap(mut self, cap_secs: f64) -> AccessDelayPolicy {
        assert!(cap_secs >= 0.0, "cap must be non-negative");
        self.cap_secs = cap_secs;
        self
    }

    /// The uncapped Eq. 1 delay for popularity rank `rank` in a relation of
    /// `n` tuples whose most popular tuple has relative frequency `fmax`.
    pub fn raw_delay(&self, n: u64, rank: usize, fmax: f64) -> f64 {
        if n == 0 || fmax <= 0.0 {
            return f64::INFINITY; // nothing learned yet: treat as most obscure
        }
        (rank as f64).powf(self.alpha + self.beta) / (n as f64 * fmax)
    }

    /// The capped delay for a rank (Eq. 5).
    pub fn delay_for_rank(&self, n: u64, rank: usize, fmax: f64) -> f64 {
        self.raw_delay(n, rank, fmax).min(self.cap_secs)
    }

    /// The capped delay for a concrete tuple given learned statistics.
    /// A key the tracker has never seen is treated as the least popular
    /// tuple of the relation (rank `n`): the tracker only knows about the
    /// keys it has observed, but the relation has `n` tuples.
    pub fn delay(&self, tracker: &FrequencyTracker, n: u64, key: u64) -> f64 {
        let fmax = self.fmax_of(tracker);
        let rank = if tracker.contains(key) {
            tracker.rank(key)
        } else {
            n as usize
        };
        self.delay_for_rank(n, rank, fmax)
    }

    /// The cap rank `M` (Eq. 5): the smallest rank whose uncapped delay
    /// meets the cap. Ranks `>= M` are all charged `cap_secs`.
    pub fn cap_rank(&self, n: u64, fmax: f64) -> u64 {
        if fmax <= 0.0 || n == 0 {
            return 1; // everything capped during start-up
        }
        let exponent = self.alpha + self.beta;
        if exponent <= 0.0 {
            return 1;
        }
        let m = (self.cap_secs * n as f64 * fmax).powf(1.0 / exponent);
        (m.ceil() as u64).clamp(1, n)
    }

    /// Flatten a frozen tracker into a [`PackedAccessDelays`] table for
    /// this policy: sorted keys plus each key's precomputed delay
    /// numerator `rank^(α+β)`, with `f_max` evaluated once. Pricing a
    /// tuple from the packed table is a binary search and one division —
    /// no hash probes, no `powf`, no tracker access — and is bit-identical
    /// to [`AccessDelayPolicy::delay`] against the same frozen tracker
    /// because every floating-point operation has the same shape and
    /// inputs (`powf` at pack time over the same rank, the same
    /// `n·f_max` product, the same `min` against the cap).
    pub fn pack(&self, tracker: &FrequencyTracker) -> PackedAccessDelays {
        let exponent = self.alpha + self.beta;
        let mut pairs: Vec<(u64, usize)> = tracker.rank_table().collect();
        pairs.sort_unstable_by_key(|&(key, _)| key);
        PackedAccessDelays {
            policy: *self,
            fmax: self.fmax_of(tracker),
            keys: pairs.iter().map(|&(key, _)| key).collect(),
            numer: pairs
                .iter()
                .map(|&(_, rank)| (rank as f64).powf(exponent))
                .collect(),
        }
    }

    /// Total delay an adversary pays to extract all `n` tuples with the
    /// *learned* statistics in `tracker` (each tuple charged once).
    /// Untracked tuples (never requested) are charged the cap, matching the
    /// paper's method of "examining the access counts after the trace was
    /// replayed".
    pub fn adversary_total(&self, tracker: &FrequencyTracker, n: u64) -> f64 {
        let fmax = self.fmax_of(tracker);
        let mut total = 0.0;
        let mut seen = 0u64;
        for (key, _) in tracker.iter() {
            total += self.delay_for_rank(n, tracker.rank(key), fmax);
            seen += 1;
        }
        debug_assert!(seen <= n, "tracker holds more keys than the relation");
        total + (n.saturating_sub(seen)) as f64 * self.cap_secs
    }
}

/// A frozen tracker's delay inputs packed into flat, rank-ordered
/// arrays: the cache-friendly form of [`AccessDelayPolicy::delay`] for
/// the snapshot pricing hot path.
///
/// Built once per snapshot by [`AccessDelayPolicy::pack`]; priced
/// per-stream by first fixing the relation-size scalars
/// ([`PackedAccessDelays::scalars`]) and then calling
/// [`PackedAccessDelays::delay`] per tuple. The result is bit-identical
/// to the generic tracker walk for every key, tracked or not.
#[derive(Debug, Clone)]
pub struct PackedAccessDelays {
    /// The policy the table was packed for (delays are only valid — and
    /// only bit-exact — against this exact policy).
    policy: AccessDelayPolicy,
    /// `f_max` evaluated against the frozen tracker at pack time.
    fmax: f64,
    /// Every tracked key, sorted ascending for binary search.
    keys: Vec<u64>,
    /// `rank^(α+β)` for the key at the same position in `keys`.
    numer: Vec<f64>,
}

/// Per-stream scalars fixed by [`PackedAccessDelays::scalars`] when a
/// query opens: everything in Eq. 1 that depends on the relation size
/// `n` but not on the individual tuple.
#[derive(Debug, Clone, Copy)]
pub struct PackedScalars {
    /// `n · f_max` — the delay denominator.
    nf: f64,
    /// `n^(α+β)` — the numerator charged to keys the tracker never saw
    /// (they rank last, i.e. at `n`).
    untracked_numer: f64,
    /// Start-up transient: `n == 0` or `f_max <= 0` prices everything at
    /// the cap (via `INFINITY.min(cap)`, exactly like the generic path).
    degenerate: bool,
}

impl PackedAccessDelays {
    /// Whether this packed table was built for exactly `policy` (delays
    /// from a stale pack under a different policy would be wrong, not
    /// just slow).
    pub fn matches(&self, policy: &AccessDelayPolicy) -> bool {
        self.policy == *policy
    }

    /// The `f_max` frozen into this pack.
    pub fn fmax(&self) -> f64 {
        self.fmax
    }

    /// Number of packed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the pack holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Fix the per-stream scalars for a relation of `n` rows.
    pub fn scalars(&self, n: u64) -> PackedScalars {
        PackedScalars {
            nf: n as f64 * self.fmax,
            untracked_numer: (n as f64).powf(self.policy.alpha + self.policy.beta),
            degenerate: n == 0 || self.fmax <= 0.0,
        }
    }

    /// The capped Eq. 5 delay for `key`: bit-identical to
    /// [`AccessDelayPolicy::delay`] on the tracker this pack froze, with
    /// `n` as passed to [`PackedAccessDelays::scalars`].
    #[inline]
    pub fn delay(&self, s: &PackedScalars, key: u64) -> f64 {
        let raw = if s.degenerate {
            f64::INFINITY
        } else {
            let numer = match self.keys.binary_search(&key) {
                Ok(i) => self.numer[i],
                Err(_) => s.untracked_numer,
            };
            numer / s.nf
        };
        raw.min(self.policy.cap_secs)
    }

    /// [`PackedAccessDelays::delay`] with a position hint for sequential
    /// workloads. Rows pulled by an index range scan arrive in key order,
    /// so each lookup usually lands right where the previous one left
    /// off; checking that slot (and the miss-side insertion point) before
    /// falling back to binary search makes pricing a scanned chunk O(1)
    /// per tuple instead of O(log keys). Returns bit-identical delays to
    /// [`PackedAccessDelays::delay`] for every key and any hint value.
    #[inline]
    pub fn delay_seq(&self, s: &PackedScalars, key: u64, hint: &mut usize) -> f64 {
        if s.degenerate {
            return f64::INFINITY.min(self.policy.cap_secs);
        }
        let i = *hint;
        let numer = if i < self.keys.len() && self.keys[i] == key {
            *hint = i + 1;
            self.numer[i]
        } else if i < self.keys.len() && self.keys[i] > key && (i == 0 || self.keys[i - 1] < key) {
            // `key` falls in the gap just before the hint: untracked.
            s.untracked_numer
        } else {
            match self.keys.binary_search(&key) {
                Ok(j) => {
                    *hint = j + 1;
                    self.numer[j]
                }
                Err(j) => {
                    *hint = j;
                    s.untracked_numer
                }
            }
        };
        (numer / s.nf).min(self.policy.cap_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn learned_tracker() -> FrequencyTracker {
        // Keys 0..10 with counts 2^(10-k): key 0 most popular.
        let mut t = FrequencyTracker::no_decay();
        for key in 0..10u64 {
            for _ in 0..(1u64 << (10 - key)) {
                t.record(key);
            }
        }
        t
    }

    #[test]
    fn popular_items_get_short_delays() {
        let t = learned_tracker();
        let p = AccessDelayPolicy::new(1.0, 1.0);
        let d_popular = p.delay(&t, 10, 0);
        let d_unpopular = p.delay(&t, 10, 9);
        assert!(d_popular < d_unpopular);
        // Rank 1, alpha+beta=2, fmax ~ 0.5: d = 1/(10*0.5) = 0.2.
        assert!((d_popular - 1.0 / (10.0 * t.fmax())).abs() < 1e-9);
    }

    #[test]
    fn unseen_tuple_pays_cap() {
        let t = learned_tracker();
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(5.0);
        assert_eq!(p.delay(&t, 1000, 999_999), 5.0);
    }

    #[test]
    fn startup_transient_all_capped() {
        let t = FrequencyTracker::no_decay();
        let p = AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0);
        assert_eq!(p.delay(&t, 100, 0), 10.0);
        assert_eq!(p.cap_rank(100, t.fmax()), 1);
    }

    #[test]
    fn delay_monotone_in_rank() {
        let p = AccessDelayPolicy::new(1.5, 0.5).with_cap(f64::INFINITY);
        let mut last = 0.0;
        for rank in 1..100 {
            let d = p.delay_for_rank(10_000, rank, 0.3);
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn cap_rank_splits_capped_from_uncapped() {
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(1.0);
        let n = 10_000u64;
        let fmax = 0.2;
        let m = p.cap_rank(n, fmax);
        assert!(m > 1 && m < n);
        // Just below M: uncapped. At/above M: capped.
        assert!(p.raw_delay(n, (m - 1) as usize, fmax) < 1.0 + 1e-9);
        assert!(p.raw_delay(n, (m + 1) as usize, fmax) >= 1.0);
        assert_eq!(p.delay_for_rank(n, (m + 1) as usize, fmax), 1.0);
    }

    #[test]
    fn higher_beta_hurts_adversary_more() {
        let t = learned_tracker();
        let lo = AccessDelayPolicy::new(1.0, 0.5).with_cap(1e9);
        let hi = AccessDelayPolicy::new(1.0, 2.0).with_cap(1e9);
        assert!(hi.adversary_total(&t, 1000) > lo.adversary_total(&t, 1000));
    }

    #[test]
    fn adversary_total_charges_unseen_at_cap() {
        let t = learned_tracker(); // 10 tracked keys
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0);
        let total = p.adversary_total(&t, 1_000);
        // 990 unseen keys at the 10 s cap dominate.
        assert!(total >= 9_900.0);
        assert!(total <= 10_000.0 + 1.0);
    }

    #[test]
    fn packed_delays_are_bit_identical_to_tracker_walk() {
        // Randomized trackers across fmax modes, caps (including 0 and
        // uncapped), and relation sizes (including n = 0): the packed
        // table must reproduce `AccessDelayPolicy::delay` to the bit for
        // tracked and untracked keys alike.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..40u32 {
            let mut t = FrequencyTracker::new(if case % 2 == 0 {
                delayguard_popularity::DecaySchedule::none()
            } else {
                delayguard_popularity::DecaySchedule::new(1.01)
            });
            let keys = (case % 7) as u64 * 13;
            for _ in 0..(case as u64 * 17) {
                t.record(next() % (keys + 1));
            }
            if case % 3 == 0 {
                t.ensure_tracked(next() % 1000);
            }
            let mode = match case % 3 {
                0 => FmaxMode::GlobalRequests,
                1 => FmaxMode::DecayedTotal,
                _ => FmaxMode::RawCount,
            };
            let cap = [0.0, 1.0, 10.0, f64::INFINITY][case as usize % 4];
            let p = AccessDelayPolicy::new(0.8, 1.2)
                .with_fmax_mode(mode)
                .with_cap(cap);
            let packed = p.pack(&t);
            assert!(packed.matches(&p));
            assert!(!packed.matches(&AccessDelayPolicy { beta: 1.3, ..p }));
            for n in [0u64, 1, t.tracked() as u64 + 5, 10_000] {
                let s = packed.scalars(n);
                let probe: Vec<u64> = t
                    .rank_table()
                    .map(|(k, _)| k)
                    .chain([next() % 2000, u64::MAX, 0])
                    .collect();
                for key in probe {
                    assert_eq!(
                        packed.delay(&s, key).to_bits(),
                        p.delay(&t, n, key).to_bits(),
                        "case {case} n {n} key {key}"
                    );
                }
            }
        }
    }

    #[test]
    fn hinted_lookup_is_bit_identical_to_binary_search() {
        // `delay_seq` must agree with `delay` to the bit for every key
        // and *any* hint value — sequential scans, random probes,
        // untracked keys, and stale hints left over from another chunk.
        let mut x: u64 = 0x2545f4914f6cdd1d;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..20u32 {
            let mut t = FrequencyTracker::no_decay();
            for _ in 0..(case as u64 * 31) {
                t.record(next() % 97);
            }
            let cap = [0.0, 10.0, f64::INFINITY][case as usize % 3];
            let p = AccessDelayPolicy::new(1.5, 1.0).with_cap(cap);
            let packed = p.pack(&t);
            for n in [0u64, 1, 500] {
                let s = packed.scalars(n);
                // Sequential ascending sweep, the intended usage.
                let mut hint = 0usize;
                for key in 0..120u64 {
                    assert_eq!(
                        packed.delay_seq(&s, key, &mut hint).to_bits(),
                        packed.delay(&s, key).to_bits(),
                        "case {case} n {n} seq key {key}"
                    );
                }
                // Random keys against arbitrary (possibly stale) hints.
                for _ in 0..200 {
                    let key = next() % 150;
                    let mut hint = (next() % 140) as usize;
                    assert_eq!(
                        packed.delay_seq(&s, key, &mut hint).to_bits(),
                        packed.delay(&s, key).to_bits(),
                        "case {case} n {n} random key {key}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_cap_disables_delays() {
        let t = learned_tracker();
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(0.0);
        assert_eq!(p.delay(&t, 10, 0), 0.0);
        assert_eq!(p.adversary_total(&t, 100), 0.0);
    }
}
