//! Table 2 kernel: adversary-total computation across delay caps on a
//! learned distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delayguard_core::AccessDelayPolicy;
use delayguard_popularity::FrequencyTracker;
use delayguard_workload::CalgaryConfig;
use std::hint::black_box;

fn learned() -> (FrequencyTracker, u64) {
    let cfg = CalgaryConfig {
        objects: 12_179,
        requests: 200_000,
        alpha: 1.5,
        inter_arrival_secs: 1.0,
        seed: 3,
    };
    let mut tracker = FrequencyTracker::no_decay();
    for key in 0..cfg.objects {
        tracker.ensure_tracked(key);
    }
    for key in cfg.key_stream() {
        tracker.record(key);
    }
    (tracker, cfg.objects)
}

fn bench(c: &mut Criterion) {
    let (tracker, objects) = learned();
    let mut group = c.benchmark_group("table2_cap_scaling");
    group.sample_size(10);
    for cap in [0.1, 1.0, 10.0, 100.0] {
        let policy = AccessDelayPolicy::new(1.5, 1.0).with_cap(cap);
        group.bench_with_input(
            BenchmarkId::new("adversary_total", format!("cap_{cap}")),
            &cap,
            |b, _| b.iter(|| black_box(policy.adversary_total(&tracker, objects))),
        );
    }
    // The per-tuple delay lookup that every legitimate query pays.
    let policy = AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0);
    group.bench_function("single_tuple_delay", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 1) % objects;
            black_box(policy.delay(&tracker, objects, key))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
