//! Table 5 kernel: single random selection query, base engine vs guarded
//! database — the per-query mechanism cost the paper quantifies at ~20%.

use criterion::{criterion_group, criterion_main, Criterion};
use delayguard_core::{GuardConfig, GuardedDatabase};
use delayguard_query::Engine;
use delayguard_workload::Rng;
use std::hint::black_box;

const ROWS: u64 = 10_000;

fn build_engine() -> Engine {
    let engine = Engine::new();
    engine
        .execute("CREATE TABLE records (id INT NOT NULL, payload TEXT NOT NULL)")
        .unwrap();
    engine
        .execute("CREATE UNIQUE INDEX records_pk ON records (id)")
        .unwrap();
    let mut batch = String::new();
    for id in 0..ROWS {
        if batch.is_empty() {
            batch.push_str("INSERT INTO records VALUES ");
        } else {
            batch.push(',');
        }
        batch.push_str(&format!("({id}, 'payload-{id}')"));
        if batch.len() > 60_000 || id == ROWS - 1 {
            engine.execute(&batch).unwrap();
            batch.clear();
        }
    }
    engine
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_overhead");

    let engine = build_engine();
    let mut rng = Rng::new(1);
    group.bench_function("base_selection", |b| {
        b.iter(|| {
            let id = rng.below(ROWS);
            let out = engine
                .query(&format!("SELECT * FROM records WHERE id = {id}"))
                .unwrap();
            black_box(out.len())
        })
    });

    let guarded = GuardedDatabase::with_engine(build_engine(), GuardConfig::paper_default());
    let mut rng = Rng::new(1);
    let mut t = 0.0;
    group.bench_function("guarded_selection", |b| {
        b.iter(|| {
            let id = rng.below(ROWS);
            t += 1.0;
            let resp = guarded
                .execute_at(&format!("SELECT * FROM records WHERE id = {id}"), t)
                .unwrap();
            black_box(resp.tuples_charged)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
