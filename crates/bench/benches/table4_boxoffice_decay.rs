//! Table 4 kernel: box-office season synthesis and weekly-boundary-decay
//! replay.

use criterion::{criterion_group, criterion_main, Criterion};
use delayguard_core::access::FmaxMode;
use delayguard_core::AccessDelayPolicy;
use delayguard_sim::{replay, DecayMode, ReplayConfig};
use delayguard_workload::{BoxOfficeConfig, WEEK_SECS};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_boxoffice_decay");
    group.sample_size(10);

    group.bench_function("season_generation", |b| {
        b.iter(|| black_box(BoxOfficeConfig::default().generate().films()))
    });

    let season = BoxOfficeConfig::default().generate();
    group.bench_function("trace_generation", |b| {
        b.iter(|| black_box(season.trace().len()))
    });

    let trace = season.trace();
    let replay_cfg = ReplayConfig {
        policy: AccessDelayPolicy::new(1.5, 1.0)
            .with_cap(10.0)
            .with_fmax_mode(FmaxMode::RawCount),
        decay: DecayMode::PerBoundary {
            rate: 1.5,
            period_secs: WEEK_SECS,
        },
        pretrack_all: true,
    };
    group.bench_function("weekly_decay_replay", |b| {
        b.iter(|| black_box(replay(&trace, &replay_cfg).adversary_total_secs))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
