//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! 1. rank maintenance: log-bucketed Fenwick vs exact linear scan;
//! 2. decay: inflated-increment vs naive per-access discounting;
//! 3. count storage: direct map vs write-behind cache vs count–min sketch;
//! 4. delay charging: per-tuple sum vs per-query max.

use criterion::{criterion_group, criterion_main, Criterion};
use delayguard_core::{AccessDelayPolicy, ChargingModel};
use delayguard_popularity::{
    CountMinSketch, CountStore, DecaySchedule, FrequencyTracker, MemoryStore, WriteBehindCache,
};
use delayguard_workload::{Rng, Zipf};
use std::collections::HashMap;
use std::hint::black_box;

fn zipf_keys(n: u64, count: usize, seed: u64) -> Vec<u64> {
    let zipf = Zipf::new(n, 1.2);
    let mut rng = Rng::new(seed);
    (0..count).map(|_| zipf.sample(&mut rng) - 1).collect()
}

fn ablation_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rank");
    let mut tracker = FrequencyTracker::no_decay();
    for key in zipf_keys(10_000, 100_000, 11) {
        tracker.record(key);
    }
    let mut key = 0u64;
    group.bench_function("fenwick_rank", |b| {
        b.iter(|| {
            key = (key + 1) % 10_000;
            black_box(tracker.rank(key))
        })
    });
    let mut key = 0u64;
    group.bench_function("exact_rank_linear_scan", |b| {
        b.iter(|| {
            key = (key + 1) % 10_000;
            black_box(tracker.exact_rank(key))
        })
    });
    group.finish();
}

fn ablation_decay(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_decay");
    let keys = zipf_keys(10_000, 50_000, 13);

    // Paper technique: O(1) inflated increments.
    group.bench_function("inflated_increment", |b| {
        b.iter(|| {
            let mut t = FrequencyTracker::new(DecaySchedule::new(1.0001));
            for &k in &keys {
                t.record(k);
            }
            black_box(t.total())
        })
    });

    // Naive alternative the paper rejects: discount every counter on every
    // access ("It is expensive to discount the value of every count at
    // each access"). Run on 1/50th of the trace to keep the bench usable —
    // Criterion reports per-iteration time; multiply by 50 to compare.
    let short = &keys[..keys.len() / 50];
    group.bench_function("naive_discount_per_access_2pct", |b| {
        b.iter(|| {
            let mut counts: HashMap<u64, f64> = HashMap::new();
            for &k in short {
                for v in counts.values_mut() {
                    *v /= 1.0001;
                }
                *counts.entry(k).or_insert(0.0) += 1.0;
            }
            black_box(counts.len())
        })
    });
    group.finish();
}

fn ablation_count_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_count_store");
    let keys = zipf_keys(100_000, 100_000, 17);

    group.bench_function("direct_hashmap", |b| {
        b.iter(|| {
            let mut counts: HashMap<u64, f64> = HashMap::new();
            for &k in &keys {
                *counts.entry(k).or_insert(0.0) += 1.0;
            }
            black_box(counts.len())
        })
    });

    group.bench_function("write_behind_cache", |b| {
        b.iter(|| {
            let mut cache = WriteBehindCache::new(MemoryStore::new(), 1024);
            for &k in &keys {
                cache.increment(k, 1.0);
            }
            let store = cache.into_store();
            black_box(store.len())
        })
    });

    group.bench_function("count_min_sketch", |b| {
        b.iter(|| {
            let mut sketch = CountMinSketch::new(4096, 4);
            for &k in &keys {
                sketch.add(k, 1.0);
            }
            black_box(sketch.total())
        })
    });
    group.finish();
}

fn ablation_charging(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_charging");
    let mut tracker = FrequencyTracker::no_decay();
    for key in zipf_keys(10_000, 100_000, 19) {
        tracker.record(key);
    }
    let policy = AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0);
    let result_keys: Vec<u64> = (0..100).collect();
    for (name, model) in [
        ("per_tuple_sum", ChargingModel::PerTupleSum),
        ("per_query_max", ChargingModel::PerQueryMax),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let delays = result_keys
                    .iter()
                    .map(|&k| policy.delay(&tracker, 10_000, k));
                black_box(model.combine(delays))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_rank,
    ablation_decay,
    ablation_count_store,
    ablation_charging
);
criterion_main!(benches);
