//! Multithreaded guarded-query throughput, before/after the lock-free
//! read path: the old global-mutex design (`ReadPath::Locked` with one
//! shard) against the snapshot path, at 1/2/4/8 worker threads.
//!
//! The machine-readable sweep (and the ≥3x acceptance check at 8
//! threads) lives in the `throughput` binary, which writes
//! `BENCH_throughput.json`:
//!
//! ```text
//! cargo run -p delayguard-bench --release --bin throughput
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delayguard_bench::throughput::{
    locked_single_mutex_config, run, seeded_db, snapshot_sharded_config, ThroughputConfig,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_throughput");
    group.sample_size(10);
    let shape = ThroughputConfig {
        queries_per_thread: 500,
        ..ThroughputConfig::default()
    };
    for threads in [1usize, 2, 4, 8] {
        let locked = seeded_db(locked_single_mutex_config(), &shape);
        group.bench_with_input(
            BenchmarkId::new("locked_single_mutex", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(run(&locked, threads, &shape).qps)),
        );
        let snapshot = seeded_db(snapshot_sharded_config(), &shape);
        group.bench_with_input(
            BenchmarkId::new("snapshot_sharded", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(run(&snapshot, threads, &shape).qps)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
