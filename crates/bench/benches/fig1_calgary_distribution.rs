//! Figure 1 kernel: synthesize a Calgary-shaped trace and extract its
//! top-10 rank/frequency table.

use criterion::{criterion_group, criterion_main, Criterion};
use delayguard_popularity::{top_k, FrequencyTracker};
use delayguard_workload::CalgaryConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_calgary_distribution");
    group.sample_size(10);

    let cfg = CalgaryConfig {
        objects: 12_179,
        requests: 100_000,
        alpha: 1.5,
        inter_arrival_secs: 1.0,
        seed: 1,
    };

    group.bench_function("trace_generation_100k", |b| {
        b.iter(|| black_box(cfg.generate().len()))
    });

    let trace = cfg.generate();
    group.bench_function("count_learning_100k", |b| {
        b.iter(|| {
            let mut tracker = FrequencyTracker::no_decay();
            for r in &trace.requests {
                tracker.record(r.key);
            }
            black_box(tracker.events())
        })
    });

    let mut tracker = FrequencyTracker::no_decay();
    for r in &trace.requests {
        tracker.record(r.key);
    }
    group.bench_function("top10_extraction", |b| {
        b.iter(|| black_box(top_k(&tracker, 10)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
