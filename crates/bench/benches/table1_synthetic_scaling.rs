//! Table 1 kernel: full replay (delay charging + count learning +
//! adversary accounting) of a scaled Calgary-shaped trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delayguard_core::AccessDelayPolicy;
use delayguard_sim::{replay_keys, DecayMode, ReplayConfig};
use delayguard_workload::CalgaryConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_synthetic_scaling");
    group.sample_size(10);
    for objects in [5_000u64, 20_000, 50_000] {
        let cfg = CalgaryConfig {
            objects,
            requests: objects * 10,
            alpha: 1.5,
            inter_arrival_secs: 1.0,
            seed: 7,
        };
        let replay_cfg = ReplayConfig {
            policy: AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0),
            decay: DecayMode::PerRequest(1.0),
            pretrack_all: true,
        };
        group.bench_with_input(BenchmarkId::new("replay", objects), &objects, |b, &_n| {
            b.iter(|| {
                let result = replay_keys(cfg.key_stream(), objects, &replay_cfg, 16);
                black_box(result.adversary_total_secs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
