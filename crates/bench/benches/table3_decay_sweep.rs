//! Table 3 kernel: replay under per-request decay (the decayed-counter
//! hot path: tick + inflated increment + rank maintenance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delayguard_core::AccessDelayPolicy;
use delayguard_sim::{replay_keys, DecayMode, ReplayConfig};
use delayguard_workload::CalgaryConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = CalgaryConfig {
        objects: 12_179,
        requests: 100_000,
        alpha: 1.5,
        inter_arrival_secs: 1.0,
        seed: 5,
    };
    let keys: Vec<u64> = cfg.key_stream().collect();
    let mut group = c.benchmark_group("table3_decay_sweep");
    group.sample_size(10);
    for rate in [1.0, 1.00001, 1.001] {
        let replay_cfg = ReplayConfig {
            policy: AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0),
            decay: DecayMode::PerRequest(rate),
            pretrack_all: true,
        };
        group.bench_with_input(
            BenchmarkId::new("replay_100k", format!("decay_{rate}")),
            &rate,
            |b, _| {
                b.iter(|| {
                    let r = replay_keys(keys.iter().copied(), cfg.objects, &replay_cfg, 16);
                    black_box(r.adversary_total_secs)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
