//! Figures 4–6 kernel: update-rate assignment, full extraction, and
//! staleness accounting at one skew point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delayguard_core::UpdateDelayPolicy;
use delayguard_sim::{extract_update_based, uniform_user_median_delay};
use delayguard_workload::{ExtractionOrder, UpdateRates};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig456_update_skew");
    group.sample_size(10);
    let n = 100_000u64;
    let policy = UpdateDelayPolicy::new(2.0).with_cap(10.0);

    for alpha in [0.25, 1.0, 2.5] {
        group.bench_with_input(
            BenchmarkId::new("rate_assignment", alpha),
            &alpha,
            |b, &a| b.iter(|| black_box(UpdateRates::zipf(n, a, n as f64, 1).rmax())),
        );
        let rates = UpdateRates::zipf(n, alpha, n as f64, 1);
        group.bench_with_input(BenchmarkId::new("extraction", alpha), &alpha, |b, _| {
            b.iter(|| {
                black_box(
                    extract_update_based(&rates, &policy, ExtractionOrder::Sequential)
                        .total_delay_secs,
                )
            })
        });
        let report = extract_update_based(&rates, &policy, ExtractionOrder::Sequential);
        group.bench_with_input(BenchmarkId::new("staleness", alpha), &alpha, |b, _| {
            b.iter(|| black_box(report.schedule.expected_stale_fraction(&rates)))
        });
        group.bench_with_input(BenchmarkId::new("user_median", alpha), &alpha, |b, _| {
            b.iter(|| black_box(uniform_user_median_delay(&rates, &policy)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
