//! Micro-benchmarks of the substrate engine: parsing, planning+execution
//! of indexed point lookups vs full scans, inserts, and updates.

use criterion::{criterion_group, criterion_main, Criterion};
use delayguard_query::{parse, Engine};
use delayguard_workload::Rng;
use std::hint::black_box;

const ROWS: u64 = 20_000;

fn engine() -> Engine {
    let e = Engine::new();
    e.execute("CREATE TABLE m (id INT NOT NULL, title TEXT NOT NULL, gross FLOAT)")
        .unwrap();
    e.execute("CREATE UNIQUE INDEX m_pk ON m (id)").unwrap();
    let mut batch = String::new();
    for id in 0..ROWS {
        if batch.is_empty() {
            batch.push_str("INSERT INTO m VALUES ");
        } else {
            batch.push(',');
        }
        batch.push_str(&format!("({id}, 'title-{id}', {}.5)", id % 500));
        if batch.len() > 60_000 || id == ROWS - 1 {
            e.execute(&batch).unwrap();
            batch.clear();
        }
    }
    e
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_micro");
    let e = engine();
    let mut rng = Rng::new(42);

    group.bench_function("parse_select", |b| {
        b.iter(|| {
            black_box(
                parse("SELECT id, title FROM m WHERE id = 123 AND gross > 1.0 LIMIT 5").unwrap(),
            )
        })
    });

    group.bench_function("indexed_point_lookup", |b| {
        b.iter(|| {
            let id = rng.below(ROWS);
            black_box(
                e.query(&format!("SELECT * FROM m WHERE id = {id}"))
                    .unwrap()
                    .len(),
            )
        })
    });

    group.bench_function("index_range_scan_100", |b| {
        b.iter(|| {
            let lo = rng.below(ROWS - 100);
            black_box(
                e.query(&format!(
                    "SELECT id FROM m WHERE id >= {lo} AND id < {}",
                    lo + 100
                ))
                .unwrap()
                .len(),
            )
        })
    });

    group.bench_function("full_scan_filter", |b| {
        b.iter(|| {
            black_box(
                e.query("SELECT id FROM m WHERE gross = 250.5")
                    .unwrap()
                    .len(),
            )
        })
    });

    group.bench_function("update_point", |b| {
        b.iter(|| {
            let id = rng.below(ROWS);
            black_box(
                e.execute(&format!("UPDATE m SET gross = gross + 1.0 WHERE id = {id}"))
                    .unwrap()
                    .row_count(),
            )
        })
    });

    // Insert/delete cycle to avoid unbounded growth.
    group.bench_function("insert_delete_cycle", |b| {
        let mut next = ROWS;
        b.iter(|| {
            next += 1;
            e.execute(&format!("INSERT INTO m VALUES ({next}, 't', 0.0)"))
                .unwrap();
            black_box(
                e.execute(&format!("DELETE FROM m WHERE id = {next}"))
                    .unwrap()
                    .row_count(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
