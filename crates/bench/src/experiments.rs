//! The experiment implementations behind every table and figure of the
//! paper's §4, shared by the `experiments` binary and the Criterion
//! benches. Each function returns both structured results (asserted in
//! tests/benches) and a rendered table for the harness output.

use delayguard_core::analysis;
use delayguard_core::{AccessDelayPolicy, UpdateDelayPolicy};
use delayguard_popularity::{top_k, FrequencyTracker};
use delayguard_sim::{
    extract_update_based, fmt_dollars, fmt_pct, fmt_secs, measure_overhead, replay, replay_keys,
    uniform_user_median_delay, DecayMode, OverheadConfig, ReplayConfig, TableBuilder,
};
use delayguard_workload::{
    BoxOfficeConfig, CalgaryConfig, ExtractionOrder, Trace, UpdateRates, WEEK_SECS,
};

/// The paper's 10-second default cap.
pub const DEFAULT_CAP_SECS: f64 = 10.0;

fn calgary_policy() -> AccessDelayPolicy {
    // α matches the trace's observed skew (≈1.5); β=1.0 is the tuning knob.
    AccessDelayPolicy::new(1.5, 1.0).with_cap(DEFAULT_CAP_SECS)
}

// ---------------------------------------------------------------- Fig. 1

/// Figure 1: request distribution of the (synthetic) Calgary trace —
/// top-10 ranks and their request counts.
pub fn fig1() -> (Vec<(u64, f64)>, String) {
    let trace = CalgaryConfig::paper().generate();
    let mut tracker = FrequencyTracker::no_decay();
    for r in &trace.requests {
        tracker.record(r.key);
    }
    let top = top_k(&tracker, 10);
    let mut table = TableBuilder::new(
        "Figure 1. Request Distribution: synthetic Calgary trace (12,179 objects, 725,091 requests, Zipf 1.5)",
        &["Rank", "Object", "Requests"],
    );
    for (rank, (key, count)) in top.iter().enumerate() {
        table.row(&[
            format!("{}", rank + 1),
            format!("{key}"),
            format!("{count:.0}"),
        ]);
    }
    (top, table.render())
}

// ---------------------------------------------------------------- Table 1

/// One row of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    pub objects: u64,
    pub median_user_delay_secs: f64,
    pub adversary_delay_secs: f64,
    pub fraction_of_max: f64,
}

/// Table 1: delays in synthetic traces of 100k / 500k / 1M tuples
/// (Calgary-shaped workload scaled up; cap 10 s).
pub fn table1(sizes: &[u64]) -> (Vec<Table1Row>, String) {
    let mut rows = Vec::new();
    let mut table = TableBuilder::new(
        "Table 1. Delays in Synthetic Traces (cap 10 s)",
        &[
            "Database Size (tuples)",
            "Median User Delay",
            "Adversary Delay",
            "Fraction of N*cap",
        ],
    );
    for &n in sizes {
        let cfg = CalgaryConfig::scaled_to(n);
        let replay_cfg = ReplayConfig {
            policy: calgary_policy(),
            decay: DecayMode::PerRequest(1.0),
            pretrack_all: true,
        };
        // Stride keeps the delay sample bounded for the 60M-request run.
        let stride = (cfg.requests / 1_000_000).max(1) as usize;
        let result = replay_keys(cfg.key_stream(), n, &replay_cfg, stride);
        let row = Table1Row {
            objects: n,
            median_user_delay_secs: result.median_user_delay_secs(),
            adversary_delay_secs: result.adversary_total_secs,
            fraction_of_max: result.fraction_of_max(),
        };
        table.row(&[
            format!("{n}"),
            fmt_secs(row.median_user_delay_secs),
            fmt_secs(row.adversary_delay_secs),
            fmt_pct(row.fraction_of_max),
        ]);
        rows.push(row);
    }
    (rows, table.render())
}

// ---------------------------------------------------------------- Table 2

/// One row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    pub cap_secs: f64,
    pub adversary_delay_secs: f64,
    pub median_user_delay_secs: f64,
}

/// Table 2: scaling the maximum delay cap on the Calgary-sized database
/// (0.1 / 1 / 10 / 100 s).
pub fn table2() -> (Vec<Table2Row>, String) {
    let cfg = CalgaryConfig::paper();
    let caps = [0.1, 1.0, 10.0, 100.0];
    let mut rows = Vec::new();
    let mut table = TableBuilder::new(
        "Table 2. Scaling Maximum Delay Costs (synthetic Calgary, 12,179 objects)",
        &["Cap (sec)", "Adversary Delay", "Median User Delay"],
    );
    for cap in caps {
        let replay_cfg = ReplayConfig {
            policy: calgary_policy().with_cap(cap),
            decay: DecayMode::PerRequest(1.0),
            pretrack_all: true,
        };
        let result = replay_keys(cfg.key_stream(), cfg.objects, &replay_cfg, 1);
        let row = Table2Row {
            cap_secs: cap,
            adversary_delay_secs: result.adversary_total_secs,
            median_user_delay_secs: result.median_user_delay_secs(),
        };
        table.row(&[
            format!("{cap}"),
            fmt_secs(row.adversary_delay_secs),
            fmt_secs(row.median_user_delay_secs),
        ]);
        rows.push(row);
    }
    (rows, table.render())
}

// ---------------------------------------------------------------- Table 3

/// One row of Table 3 / Table 4.
#[derive(Debug, Clone, Copy)]
pub struct DecayRow {
    pub decay_rate: f64,
    pub median_user_delay_secs: f64,
    pub adversary_delay_secs: f64,
}

/// Table 3: per-request decay-rate sweep on the Calgary trace.
pub fn table3() -> (Vec<DecayRow>, String) {
    let trace_keys: Vec<u64> = CalgaryConfig::paper().key_stream().collect();
    let objects = CalgaryConfig::paper().objects;
    let rates = [1.0, 1.000001, 1.000002, 1.000005, 1.00001, 1.00002];
    let mut rows = Vec::new();
    let mut table = TableBuilder::new(
        "Table 3. Delays in synthetic Calgary Trace (per-request decay sweep, cap 10 s)",
        &["Decay Rate", "Median User Delay", "Adversary Delay"],
    );
    for rate in rates {
        let replay_cfg = ReplayConfig {
            policy: calgary_policy(),
            decay: DecayMode::PerRequest(rate),
            pretrack_all: true,
        };
        let result = replay_keys(trace_keys.iter().copied(), objects, &replay_cfg, 1);
        let row = DecayRow {
            decay_rate: rate,
            median_user_delay_secs: result.median_user_delay_secs(),
            adversary_delay_secs: result.adversary_total_secs,
        };
        table.row(&[
            format!("{rate:.6}"),
            fmt_secs(row.median_user_delay_secs),
            fmt_secs(row.adversary_delay_secs),
        ]);
        rows.push(row);
    }
    (rows, table.render())
}

// ------------------------------------------------------------ Fig. 2 / 3

/// Top-k film/sales pairs, descending.
pub type SalesRanking = Vec<(u64, f64)>;

/// Figures 2 and 3: top-10 films by annual sales and by first-week sales.
pub fn fig2_fig3() -> (SalesRanking, SalesRanking, String) {
    let season = BoxOfficeConfig::default().generate();
    let annual = season.top_annual(10);
    let week0 = season.top_week(0, 10);
    let mut t2 = TableBuilder::new(
        "Figure 2. Sales Distribution of Top 10 Movies (synthetic 2002 season, annual)",
        &["Rank", "Film", "Annual Sales"],
    );
    for (rank, (film, sales)) in annual.iter().enumerate() {
        t2.row(&[
            format!("{}", rank + 1),
            format!("{film}"),
            fmt_dollars(*sales),
        ]);
    }
    let mut t3 = TableBuilder::new(
        "Figure 3. Top 10 Movies for First Week (synthetic 2002 season)",
        &["Rank", "Film", "Week-1 Sales"],
    );
    for (rank, (film, sales)) in week0.iter().enumerate() {
        t3.row(&[
            format!("{}", rank + 1),
            format!("{film}"),
            fmt_dollars(*sales),
        ]);
    }
    let rendered = format!("{}\n{}", t2.render(), t3.render());
    (annual, week0, rendered)
}

// ---------------------------------------------------------------- Table 4

/// Table 4: weekly decay-rate sweep on the box-office trace.
pub fn table4() -> (Vec<DecayRow>, String) {
    let season = BoxOfficeConfig::default().generate();
    let trace: Trace = season.trace();
    let rates = [1.0, 1.01, 1.02, 1.05, 1.10, 1.20, 1.50, 2.0, 5.0];
    // The paper's Table 4 medians (tens of microseconds on a 634-row
    // table) are only consistent with Eq. 1's f_max read as the *absolute*
    // top count; see EXPERIMENTS.md for the decoding.
    let policy = AccessDelayPolicy::new(1.5, 1.0)
        .with_cap(DEFAULT_CAP_SECS)
        .with_fmax_mode(delayguard_core::access::FmaxMode::RawCount);
    let mut rows = Vec::new();
    let mut table = TableBuilder::new(
        "Table 4. Delays in synthetic Box Office Data (weekly decay sweep, cap 10 s, 634 films)",
        &["Decay Rate", "Median User Delay", "Adversary Delay"],
    );
    for rate in rates {
        let replay_cfg = ReplayConfig {
            policy,
            decay: DecayMode::PerBoundary {
                rate,
                period_secs: WEEK_SECS,
            },
            pretrack_all: true,
        };
        let result = replay(&trace, &replay_cfg);
        let row = DecayRow {
            decay_rate: rate,
            median_user_delay_secs: result.median_user_delay_secs(),
            adversary_delay_secs: result.adversary_total_secs,
        };
        table.row(&[
            format!("{rate:.2}"),
            fmt_secs(row.median_user_delay_secs),
            fmt_secs(row.adversary_delay_secs),
        ]);
        rows.push(row);
    }
    (rows, table.render())
}

// --------------------------------------------------------- Figs. 4, 5, 6

/// One skew point of the §4.3 dynamic-data simulation.
#[derive(Debug, Clone, Copy)]
pub struct UpdateSkewRow {
    pub alpha: f64,
    /// Fig. 4: median user delay (uniform queries), seconds.
    pub median_user_delay_secs: f64,
    /// Fig. 5: total adversary delay, seconds.
    pub adversary_delay_secs: f64,
    /// Fig. 6: stale fraction of the extracted copy (paper criterion).
    pub stale_fraction: f64,
    /// Poisson-expected stale fraction (exposure-refined).
    pub stale_fraction_expected: f64,
}

/// Configuration of the §4.3 sweep.
#[derive(Debug, Clone, Copy)]
pub struct UpdateSkewConfig {
    pub objects: u64,
    /// Aggregate update rate over the whole relation, updates/sec.
    pub total_update_rate: f64,
    /// Eq. 9 scale constant.
    pub c: f64,
    pub cap_secs: f64,
    pub seed: u64,
}

impl Default for UpdateSkewConfig {
    fn default() -> Self {
        UpdateSkewConfig {
            objects: 100_000,
            // One update per tuple per second on average: the §4.3 setup
            // "simultaneously posed queries and posted updates".
            total_update_rate: 100_000.0,
            // Eq. 12 gives S_max = (c/(1+α))^(1/α); the paper's Fig. 6
            // shows ~100% staleness at low skew, which requires c ≥ 1+α
            // there ("delays were set so that an adversary should expect
            // to obtain stale values"). c = 2 keeps low/mid skews fully
            // stale while the 10 s cap erodes staleness at high skew —
            // the declining right side of Fig. 6.
            c: 2.0,
            cap_secs: DEFAULT_CAP_SECS,
            seed: 0xF456,
        }
    }
}

/// Figures 4–6: sweep update skew α over 0.25..=2.5.
pub fn fig456(config: &UpdateSkewConfig, alphas: &[f64]) -> (Vec<UpdateSkewRow>, String) {
    let policy = UpdateDelayPolicy::new(config.c).with_cap(config.cap_secs);
    let mut rows = Vec::new();
    let mut table = TableBuilder::new(
        format!(
            "Figures 4-6. Dynamic data simulation ({} tuples, uniform queries, Zipf updates at {} upd/s)",
            config.objects, config.total_update_rate
        ),
        &[
            "Skew (alpha)",
            "Fig4: Median User Delay",
            "Fig5: Adversary Delay",
            "Fig6: Stale Fraction",
            "Stale (Poisson expected)",
        ],
    );
    for &alpha in alphas {
        let rates = UpdateRates::zipf(config.objects, alpha, config.total_update_rate, config.seed);
        let report = extract_update_based(&rates, &policy, ExtractionOrder::Sequential);
        let row = UpdateSkewRow {
            alpha,
            median_user_delay_secs: uniform_user_median_delay(&rates, &policy),
            adversary_delay_secs: report.total_delay_secs,
            stale_fraction: report.schedule.paper_stale_fraction(&rates),
            stale_fraction_expected: report.schedule.expected_stale_fraction(&rates),
        };
        table.row(&[
            format!("{alpha:.2}"),
            fmt_secs(row.median_user_delay_secs),
            fmt_secs(row.adversary_delay_secs),
            fmt_pct(row.stale_fraction),
            fmt_pct(row.stale_fraction_expected),
        ]);
        rows.push(row);
    }
    (rows, table.render())
}

/// The α values of Figures 4–6.
pub fn paper_alphas() -> Vec<f64> {
    (1..=10).map(|i| i as f64 * 0.25).collect()
}

// ---------------------------------------------------------------- Table 5

/// Table 5: implementation overhead on simple selection queries.
pub fn table5(config: &OverheadConfig) -> (delayguard_sim::OverheadReport, String) {
    let report = measure_overhead(config);
    let mut table = TableBuilder::new(
        format!(
            "Table 5. Overheads in Simple Selection Queries ({} rows, {} queries)",
            config.rows, config.queries
        ),
        &["", "avg", "stdev"],
    );
    table.row(&[
        "Base query cost".into(),
        fmt_secs(report.base.mean()),
        fmt_secs(report.base.stdev()),
    ]);
    table.row(&[
        "Total cost (counts + delay computation)".into(),
        fmt_secs(report.guarded.mean()),
        fmt_secs(report.guarded.stdev()),
    ]);
    table.row(&[
        "Overhead".into(),
        fmt_secs(report.overhead_secs()),
        fmt_pct(report.overhead_fraction()),
    ]);
    let rendered = table.render();
    (report, rendered)
}

// ------------------------------------------------------------- Analysis

/// Cross-check the closed forms (Eq. 3/4/7/12) against simulation.
pub fn analysis_table() -> String {
    let mut table = TableBuilder::new(
        "Analysis cross-check: closed forms (Eq. 3, 4/7, 12) at N = 100,000",
        &[
            "alpha",
            "median request rank (Eq.3)",
            "adversary/user ratio, cap 10s (Eq.7)",
            "S_max(c=1) exact vs Eq.12",
        ],
    );
    let n = 100_000u64;
    for alpha in [0.5, 1.0, 1.5, 2.0] {
        let med = analysis::median_rank_exact(n, alpha);
        let fmax = 1.0 / delayguard_workload::generalized_harmonic(n, alpha);
        let ratio = analysis::delay_ratio(n, alpha, 1.0, fmax, Some(10.0));
        let exact = analysis::stale_fraction_exact(n, alpha, 1.0);
        let approx = analysis::smax_asymptotic(alpha, 1.0);
        table.row(&[
            format!("{alpha:.2}"),
            format!("{med}"),
            format!("{ratio:.3e}"),
            format!("{exact:.3} vs {approx:.3}"),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_is_skewed() {
        let (top, rendered) = fig1();
        assert_eq!(top.len(), 10);
        assert!(top[0].1 / top[9].1 > 10.0, "decade of skew across top 10");
        assert!(rendered.contains("Figure 1"));
    }

    #[test]
    fn table2_shape_matches_paper() {
        // Adversary delay grows with the cap, while the *fraction* of the
        // maximum falls (fewer tuples are capped at higher caps).
        let (rows, rendered) = table2();
        assert!(rendered.contains("Table 2"));
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[1].adversary_delay_secs > w[0].adversary_delay_secs);
        }
        let n = 12_179.0;
        let frac_low = rows[0].adversary_delay_secs / (n * rows[0].cap_secs);
        let frac_high = rows[3].adversary_delay_secs / (n * rows[3].cap_secs);
        assert!(frac_low > frac_high, "{frac_low} vs {frac_high}");
        assert!(frac_low > 0.85, "small caps cap nearly everything");
    }

    #[test]
    fn fig456_shapes_match_paper() {
        let cfg = UpdateSkewConfig {
            objects: 10_000,
            total_update_rate: 10_000.0,
            ..Default::default()
        };
        let (rows, _) = fig456(&cfg, &[0.25, 1.0, 2.0, 2.5]);
        // Fig 4: median user delay rises with skew.
        assert!(rows[0].median_user_delay_secs < rows[3].median_user_delay_secs);
        // Fig 5: adversary delay rises with skew toward N * cap.
        assert!(rows[0].adversary_delay_secs < rows[3].adversary_delay_secs);
        assert!(rows[3].adversary_delay_secs <= cfg.objects as f64 * cfg.cap_secs + 1e-6);
        assert!(rows[3].adversary_delay_secs >= 0.5 * cfg.objects as f64 * cfg.cap_secs);
        // Fig 6: staleness near-total at low skew, reduced at high skew.
        assert!(rows[0].stale_fraction > 0.9, "{}", rows[0].stale_fraction);
        assert!(rows[3].stale_fraction < rows[0].stale_fraction);
    }
}
