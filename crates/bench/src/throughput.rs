//! Multithreaded guarded-query throughput: the experiment behind
//! `benches/concurrent_throughput.rs` and the `throughput` binary.
//!
//! Measures end-to-end guarded `SELECT` throughput (execute + price +
//! record, via `execute_stmt_with_deadline`) at increasing thread counts
//! under the two read paths:
//!
//! * **`locked_single_mutex`** — [`ReadPath::Locked`] with `shards = 1`:
//!   an honest reproduction of the pre-snapshot design, where every
//!   query serialized on one global guard mutex.
//! * **`snapshot_sharded`** — [`ReadPath::Snapshot`] (the default):
//!   pricing from the immutable snapshot, recording through the
//!   lock-free queue.
//!
//! Queries are multi-row range scans so per-tuple charging (the work the
//! old design did under the lock) dominates, exactly the contention the
//! snapshot path removes.

use delayguard_core::{
    AccessDelayPolicy, ChargedChunk, GuardConfig, GuardPolicy, GuardedDatabase, PreparedQuery,
    ReadPath,
};
use delayguard_query::ast::Statement;
use delayguard_query::{parse, ExecScratch, RowBuf};
use delayguard_storage::copymeter;
use delayguard_workload::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

/// Workload shape shared by every measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputConfig {
    /// Table size.
    pub rows: u64,
    /// Rows returned per query (range width).
    pub rows_per_query: u64,
    /// Queries each worker thread issues during the measured phase.
    pub queries_per_thread: u64,
    /// Warm-up traffic (per table, sequential) before measuring, so the
    /// guard prices learned popularity rather than the all-at-cap
    /// start-up transient.
    pub warmup_queries: u64,
}

impl Default for ThroughputConfig {
    fn default() -> ThroughputConfig {
        ThroughputConfig {
            rows: 8192,
            rows_per_query: 32,
            queries_per_thread: 2_000,
            warmup_queries: 2_000,
        }
    }
}

impl ThroughputConfig {
    /// A fast variant for CI smoke runs.
    pub fn smoke() -> ThroughputConfig {
        ThroughputConfig {
            rows: 1024,
            rows_per_query: 16,
            queries_per_thread: 200,
            warmup_queries: 200,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputSample {
    /// Worker threads issuing queries concurrently.
    pub threads: usize,
    /// Total queries completed across all threads.
    pub queries: u64,
    /// Wall-clock time for the measured phase, in seconds.
    pub elapsed_secs: f64,
    /// Queries per second.
    pub qps: f64,
    /// Tuples priced and recorded per second.
    pub tuples_per_sec: f64,
}

/// The guard configuration for the pre-snapshot baseline: one global
/// mutex, exact pricing.
pub fn locked_single_mutex_config() -> GuardConfig {
    bench_policy()
        .with_read_path(ReadPath::Locked)
        .with_shards(1)
}

/// The guard configuration under test: the default lock-free snapshot
/// path.
pub fn snapshot_sharded_config() -> GuardConfig {
    bench_policy().with_read_path(ReadPath::Snapshot)
}

fn bench_policy() -> GuardConfig {
    // The paper's canonical policy with a finite cap; no decay so the
    // warm-up's learned distribution is stable across the run.
    GuardConfig::paper_default().with_policy(GuardPolicy::AccessRate(
        AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0),
    ))
}

/// Build and seed a guarded database for the workload: `rows` tuples,
/// indexed id column, plus sequential warm-up traffic (through the exact
/// virtual-time path) and an initial snapshot refresh.
pub fn seeded_db(config: GuardConfig, shape: &ThroughputConfig) -> Arc<GuardedDatabase> {
    let db = GuardedDatabase::new(config);
    db.execute_at("CREATE TABLE t (id INT NOT NULL, body TEXT)", 0.0)
        .unwrap();
    db.execute_at("CREATE UNIQUE INDEX t_pk ON t (id)", 0.0)
        .unwrap();
    // Multi-row inserts keep seeding cheap.
    let mut i = 0;
    while i < shape.rows {
        let end = (i + 256).min(shape.rows);
        let values: Vec<String> = (i..end).map(|k| format!("({k}, 'row-{k}')")).collect();
        db.execute_at(&format!("INSERT INTO t VALUES {}", values.join(", ")), 0.0)
            .unwrap();
        i = end;
    }
    // Warm-up traffic so the measured phase prices a learned (non-cap)
    // distribution.
    let mut rng = Rng::new(0x5eed);
    for q in 0..shape.warmup_queries {
        let start = rng.below(shape.rows.saturating_sub(shape.rows_per_query).max(1));
        db.execute_at(
            &format!(
                "SELECT * FROM t WHERE id >= {start} AND id < {}",
                start + shape.rows_per_query
            ),
            1.0 + q as f64,
        )
        .unwrap();
    }
    db.refresh();
    Arc::new(db)
}

/// Each worker's query mix: 64 distinct range scans, cycled.
fn worker_sql(tid: u64, shape: &ThroughputConfig) -> Vec<String> {
    let mut rng = Rng::new(0xbadc0de + tid);
    (0..64)
        .map(|_| {
            let start = rng.below(shape.rows.saturating_sub(shape.rows_per_query).max(1));
            format!(
                "SELECT * FROM t WHERE id >= {start} AND id < {}",
                start + shape.rows_per_query
            )
        })
        .collect()
}

/// Pre-parse each worker's query mix, so the measured phase is execute +
/// price + record, not SQL parsing.
fn worker_statements(tid: u64, shape: &ThroughputConfig) -> Vec<Statement> {
    worker_sql(tid, shape)
        .iter()
        .map(|sql| parse(sql).unwrap())
        .collect()
}

/// Prepare each worker's query mix for the zero-copy hot path.
fn worker_prepared(db: &GuardedDatabase, tid: u64, shape: &ThroughputConfig) -> Vec<PreparedQuery> {
    worker_sql(tid, shape)
        .iter()
        .map(|sql| db.prepare(sql).unwrap())
        .collect()
}

/// Run one prepared query through the streaming hot path, draining it in
/// `chunk_rows`-sized pulls through recycled buffers — the exact shape of
/// the server gate's per-connection loop. Returns the rows seen.
#[inline]
fn drain_prepared(
    db: &GuardedDatabase,
    prep: &mut PreparedQuery,
    scratch: &mut ExecScratch,
    buf: &mut RowBuf,
    charged: &mut ChargedChunk,
    chunk_rows: usize,
) -> u64 {
    db.execute_prepared_streaming(prep, scratch, |mut stream| {
        let mut rows = 0u64;
        loop {
            let n = stream.next_chunk_into(chunk_rows, buf).unwrap();
            if n == 0 {
                break;
            }
            stream.charge_into(buf.rows(), charged);
            rows += n as u64;
            // A short chunk means the cursor is exhausted; skip the
            // empty re-probe the trailing `Ok(0)` round would cost.
            if n < chunk_rows {
                break;
            }
        }
        rows
    })
    .unwrap()
}

/// Run the measured phase: `threads` workers each issuing
/// `queries_per_thread` pre-parsed range scans through
/// `execute_stmt_with_deadline`.
pub fn run(
    db: &Arc<GuardedDatabase>,
    threads: usize,
    shape: &ThroughputConfig,
) -> ThroughputSample {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let failed = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..threads)
        .map(|tid| {
            let db = Arc::clone(db);
            let barrier = Arc::clone(&barrier);
            let failed = Arc::clone(&failed);
            let stmts = worker_statements(tid as u64, shape);
            let queries = shape.queries_per_thread;
            thread::spawn(move || {
                barrier.wait();
                for q in 0..queries {
                    let stmt = &stmts[(q % stmts.len() as u64) as usize];
                    if db.execute_stmt_with_deadline(stmt).is_err() {
                        failed.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed_secs = started.elapsed().as_secs_f64().max(1e-9);
    assert!(!failed.load(Ordering::Relaxed), "worker query failed");
    let queries = threads as u64 * shape.queries_per_thread;
    ThroughputSample {
        threads,
        queries,
        elapsed_secs,
        qps: queries as f64 / elapsed_secs,
        tuples_per_sec: (queries * shape.rows_per_query) as f64 / elapsed_secs,
    }
}

/// Run the measured phase through the allocation-free pipeline:
/// `threads` workers, each with its own prepared query mix and recycled
/// scratch/row/pricing buffers, issuing `queries_per_thread` queries via
/// `execute_prepared_streaming`.
pub fn run_prepared(
    db: &Arc<GuardedDatabase>,
    threads: usize,
    shape: &ThroughputConfig,
) -> ThroughputSample {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|tid| {
            let db = Arc::clone(db);
            let barrier = Arc::clone(&barrier);
            let mut preps = worker_prepared(&db, tid as u64, shape);
            let queries = shape.queries_per_thread;
            let rows_per_query = shape.rows_per_query;
            // One row more than a full result, so the last (only) chunk
            // comes back short and the drain ends without an empty probe.
            let chunk_rows = rows_per_query as usize + 1;
            thread::spawn(move || {
                let mut scratch = ExecScratch::new();
                let mut buf = RowBuf::new();
                let mut charged = ChargedChunk::default();
                barrier.wait();
                let mut rows = 0u64;
                for q in 0..queries {
                    let i = (q % preps.len() as u64) as usize;
                    rows += drain_prepared(
                        &db,
                        &mut preps[i],
                        &mut scratch,
                        &mut buf,
                        &mut charged,
                        chunk_rows,
                    );
                }
                assert_eq!(rows, queries * rows_per_query, "short result set");
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed_secs = started.elapsed().as_secs_f64().max(1e-9);
    let queries = threads as u64 * shape.queries_per_thread;
    ThroughputSample {
        threads,
        queries,
        elapsed_secs,
        qps: queries as f64 / elapsed_secs,
        tuples_per_sec: (queries * shape.rows_per_query) as f64 / elapsed_secs,
    }
}

/// Steady-state instrumentation of the prepared hot path.
#[derive(Debug, Clone, Copy)]
pub struct HotPathMeters {
    /// Queries in the measured span.
    pub queries: u64,
    /// Heap allocations per query (counting allocator delta / queries).
    pub allocs_per_query: f64,
    /// Payload bytes memcpy'd per row ([`copymeter`] delta / rows).
    pub bytes_copied_per_row: f64,
}

/// Measure `allocs_per_query` and `bytes_copied_per_row` over a
/// steady-state single-thread span of the prepared pipeline.
///
/// `alloc_probe` reads the calling thread's allocation counter — the
/// bench binaries pass their counting `#[global_allocator]`'s reader (the
/// library itself is `forbid(unsafe_code)` and cannot own the allocator).
/// A long warm-up first gets every recycled buffer to its high-water
/// mark, so the measured span sees only the allocations the pipeline
/// makes *per query*, not one-time growth.
pub fn measure_hot_path(
    db: &Arc<GuardedDatabase>,
    shape: &ThroughputConfig,
    alloc_probe: &dyn Fn() -> u64,
) -> HotPathMeters {
    let mut preps = worker_prepared(db, 0, shape);
    let mut scratch = ExecScratch::new();
    let mut buf = RowBuf::new();
    let mut charged = ChargedChunk::default();
    let chunk_rows = shape.rows_per_query as usize + 1;
    let warmup = 256u64;
    let measured = 1024u64;
    let mut rows = 0u64;
    for q in 0..warmup {
        let i = (q % preps.len() as u64) as usize;
        drain_prepared(
            db,
            &mut preps[i],
            &mut scratch,
            &mut buf,
            &mut charged,
            chunk_rows,
        );
    }
    let allocs_before = alloc_probe();
    let copied_before = copymeter::read();
    for q in 0..measured {
        let i = (q % preps.len() as u64) as usize;
        rows += drain_prepared(
            db,
            &mut preps[i],
            &mut scratch,
            &mut buf,
            &mut charged,
            chunk_rows,
        );
    }
    let allocs = alloc_probe() - allocs_before;
    let copied = copymeter::read() - copied_before;
    HotPathMeters {
        queries: measured,
        allocs_per_query: allocs as f64 / measured as f64,
        bytes_copied_per_row: copied as f64 / rows.max(1) as f64,
    }
}

/// Sweep thread counts for one configuration over a freshly seeded
/// database per point (so no run inherits another's learned state).
pub fn sweep(
    config: GuardConfig,
    shape: &ThroughputConfig,
    thread_counts: &[usize],
) -> Vec<ThroughputSample> {
    thread_counts
        .iter()
        .map(|&threads| {
            let db = seeded_db(config, shape);
            run(&db, threads, shape)
        })
        .collect()
}

/// [`sweep`], but through the prepared zero-copy pipeline.
pub fn sweep_prepared(
    config: GuardConfig,
    shape: &ThroughputConfig,
    thread_counts: &[usize],
) -> Vec<ThroughputSample> {
    thread_counts
        .iter()
        .map(|&threads| {
            let db = seeded_db(config, shape);
            run_prepared(&db, threads, shape)
        })
        .collect()
}

/// The satellite experiment behind "STATS traffic can't stall queries":
/// measure worker qps while one storm thread continuously inspects
/// per-tuple delays. With `exact_stats` the storm uses
/// `GuardedDatabase::tuple_delay`, which (like the pre-snapshot
/// `popularity_rank`) takes the same exclusive lock as query writers;
/// otherwise it uses the lock-free `snapshot_tuple_delay` read.
pub fn run_with_stats_storm(
    db: &Arc<GuardedDatabase>,
    threads: usize,
    shape: &ThroughputConfig,
    exact_stats: bool,
) -> ThroughputSample {
    let rids: Vec<_> = {
        let stmt = parse("SELECT * FROM t WHERE id >= 0").unwrap();
        match db.engine().execute_stmt(&stmt).unwrap() {
            delayguard_query::StatementOutput::Rows(rows) => rows.row_ids().collect(),
            other => panic!("unexpected output {other:?}"),
        }
    };
    let stop = Arc::new(AtomicBool::new(false));
    let storm = {
        let db = Arc::clone(db);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for &rid in &rids {
                    if exact_stats {
                        db.tuple_delay("t", rid, db.now_secs()).unwrap();
                    } else {
                        db.snapshot_tuple_delay("t", rid, db.now_secs()).unwrap();
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            }
        })
    };
    let sample = run(db, threads, shape);
    stop.store(true, Ordering::Relaxed);
    storm.join().unwrap();
    sample
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_both_paths() {
        let shape = ThroughputConfig {
            rows: 256,
            rows_per_query: 8,
            queries_per_thread: 50,
            warmup_queries: 50,
        };
        for config in [locked_single_mutex_config(), snapshot_sharded_config()] {
            let db = seeded_db(config, &shape);
            let sample = run(&db, 2, &shape);
            assert_eq!(sample.queries, 100);
            assert!(sample.qps > 0.0);
        }
    }

    #[test]
    fn prepared_path_accounts_every_tuple() {
        let shape = ThroughputConfig {
            rows: 128,
            rows_per_query: 4,
            queries_per_thread: 25,
            warmup_queries: 10,
        };
        let db = seeded_db(snapshot_sharded_config(), &shape);
        let sample = run_prepared(&db, 2, &shape);
        assert_eq!(sample.queries, 50);
        db.refresh();
        let expected = (shape.warmup_queries + sample.queries) * shape.rows_per_query;
        assert_eq!(db.access_events("t"), expected);
    }

    #[test]
    fn hot_path_meters_report_finite_numbers() {
        let shape = ThroughputConfig {
            rows: 256,
            rows_per_query: 8,
            queries_per_thread: 50,
            warmup_queries: 50,
        };
        let db = seeded_db(snapshot_sharded_config(), &shape);
        // The test harness has no counting allocator; a constant probe
        // still exercises the measurement plumbing end to end.
        let meters = measure_hot_path(&db, &shape, &|| 0);
        assert_eq!(meters.queries, 1024);
        assert_eq!(meters.allocs_per_query, 0.0);
        assert!(
            meters.bytes_copied_per_row > 0.0,
            "rows decode through the copymeter"
        );
    }

    #[test]
    fn samples_account_every_tuple() {
        let shape = ThroughputConfig {
            rows: 128,
            rows_per_query: 4,
            queries_per_thread: 25,
            warmup_queries: 10,
        };
        let db = seeded_db(snapshot_sharded_config(), &shape);
        let sample = run(&db, 4, &shape);
        db.refresh();
        // warmup + measured tuples all recorded, none lost.
        let expected = (shape.warmup_queries + sample.queries) * shape.rows_per_query;
        assert_eq!(db.access_events("t"), expected);
    }
}
