//! # delayguard-bench
//!
//! Experiment implementations ([`experiments`]) shared by the
//! `experiments` harness binary (regenerates every table and figure of the
//! paper) and the Criterion benches under `benches/`.
//!
//! Run the full harness with:
//!
//! ```text
//! cargo run -p delayguard-bench --release --bin experiments
//! cargo run -p delayguard-bench --release --bin experiments -- table3
//! cargo run -p delayguard-bench --release --bin experiments -- --quick
//! ```

#![forbid(unsafe_code)]

pub mod experiments;
pub mod throughput;
