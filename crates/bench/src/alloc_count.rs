//! A counting global allocator for the bench binaries.
//!
//! Wraps the system allocator and bumps a thread-local counter on every
//! `alloc` / `alloc_zeroed` / `realloc`, so a measured section can report
//! `allocs_per_query` exactly: take the counter before and after a
//! steady-state span on one thread and divide. Frees are not counted —
//! the budget is about allocation pressure, and a path that allocates
//! nothing frees nothing.
//!
//! The counter is a `const`-initialized thread-local `Cell<u64>`: no lazy
//! initialization, no destructor, so it is safe to touch from inside the
//! allocator itself on any thread at any point of its lifetime.
//!
//! This file is deliberately *not* part of the `delayguard-bench` library
//! (which is `#![forbid(unsafe_code)]`); the binaries pull it in with a
//! `#[path]` module declaration so the one `unsafe impl` lives only in
//! the instrumented executables.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// The counting wrapper. Install with:
///
/// ```ignore
/// #[global_allocator]
/// static GLOBAL: alloc_count::CountingAllocator = alloc_count::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: a transparent wrapper over `System` — every allocator
// contract (layout validity, pointer provenance, size bounds) is
// forwarded unchanged, and the counter bump touches only a
// const-initialized thread-local `Cell`, which cannot allocate or
// re-enter the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        // SAFETY: same layout, same contract, delegated to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System` (every alloc above delegates
        // to it) and `layout` is the one it was allocated with.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::alloc_zeroed`'s contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        // SAFETY: same layout, same contract, delegated to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        // SAFETY: `ptr`/`layout` describe a live `System` allocation and
        // `new_size` is the caller's requested size, passed through.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Heap allocations performed by this thread since it started (or since
/// the last [`take`]).
pub fn count() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Reset this thread's counter, returning the previous total.
#[allow(dead_code)]
pub fn take() -> u64 {
    ALLOCS.with(|c| c.replace(0))
}
