//! Streaming-pipeline bench: first-row latency and peak buffered rows,
//! materialized (`execute_with_deadline`) vs streaming
//! (`execute_streaming` pulled in 256-row chunks), at 1k / 100k / 1M-row
//! scans. Writes `BENCH_streaming.json` at the repo root.
//!
//! ```text
//! cargo run -p delayguard-bench --release --bin streaming
//! cargo run -p delayguard-bench --release --bin streaming -- --smoke
//! ```
//!
//! The point of the streaming executor is that result-set memory and
//! time-to-first-tuple stop scaling with the scan: the materialized path
//! buffers all `n` rows before the first can be priced, the streaming
//! path never holds more than one chunk. `--smoke` runs small shapes for
//! CI; the latency gate (first row of the largest scan within 2x of a
//! one-row query) is enforced only on the full run.

use delayguard_bench::throughput::{measure_hot_path, HotPathMeters, ThroughputConfig};
use delayguard_core::{GuardConfig, GuardedDatabase, StreamedQuery};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[path = "../alloc_count.rs"]
mod alloc_count;

/// Matches `ServerConfig::stream_chunk_rows`'s default.
const CHUNK_ROWS: usize = 256;
/// Timing repetitions; the minimum is reported.
const REPS: usize = 5;
/// Steady-state allocation budget for one prepared query on the zero-copy
/// path (one access-event queue node plus its key vector per chunk).
const ALLOCS_PER_QUERY_MAX: f64 = 2.0;

#[derive(Debug, Clone, Copy)]
struct Sample {
    rows: u64,
    /// Seconds until the first row was priced and available to schedule.
    first_row_secs: f64,
    /// Seconds to drain the whole result.
    total_secs: f64,
    /// Largest number of result rows buffered at once.
    peak_buffered_rows: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scans: &[u64] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 100_000, 1_000_000]
    };
    let largest = *scans.last().unwrap();

    eprintln!(
        "streaming pipeline bench: scans {scans:?}, chunk {CHUNK_ROWS} rows{}",
        if smoke { " (smoke)" } else { "" }
    );

    // One database per scan size, fully scanned: first-row latency must
    // not scale with the table. The point-query baseline runs against the
    // largest table.
    let point_sql = "SELECT * FROM t WHERE id = 0";
    let mut point = None;
    let mut materialized = Vec::new();
    let mut streaming = Vec::new();
    for &rows in scans {
        let db = seeded_db(rows);
        let m = best_of(REPS, || run_materialized(&db, "SELECT * FROM t"));
        // One full drain validates the count and the chunk-bounded peak
        // buffer; the first-row metric then comes from reps that drop the
        // stream after the first tuple, so the latency measured is the
        // pipeline's open-plus-one-row cost, not the cache wreckage a
        // prior full drain leaves behind.
        let mut s = run_streaming(&db, "SELECT * FROM t", CHUNK_ROWS, false);
        s.first_row_secs = best_of(REPS, || {
            run_streaming(&db, "SELECT * FROM t", CHUNK_ROWS, true)
        })
        .first_row_secs;
        assert_eq!(m.rows, rows, "materialized scan returned {} rows", m.rows);
        assert_eq!(s.rows, rows, "streaming scan returned {} rows", s.rows);
        eprintln!(
            "  {rows:>9} rows: first row {:>10.1}us materialized / {:>8.1}us streaming, \
             peak buffer {:>9} / {:>4}",
            m.first_row_secs * 1e6,
            s.first_row_secs * 1e6,
            m.peak_buffered_rows,
            s.peak_buffered_rows
        );
        materialized.push(m);
        streaming.push(s);
        if rows == largest {
            point = Some(best_of(REPS, || {
                run_streaming(&db, point_sql, CHUNK_ROWS, true)
            }));
        }
    }
    let point = point.unwrap();
    eprintln!(
        "  point query ({largest}-row table): first row {:.1}us",
        point.first_row_secs * 1e6
    );

    // The memory bound is structural, not statistical: enforce it always.
    for s in &streaming {
        assert!(
            s.peak_buffered_rows <= CHUNK_ROWS as u64,
            "streaming buffered {} rows, chunk is {CHUNK_ROWS}",
            s.peak_buffered_rows
        );
    }

    let largest_first_row = streaming.last().unwrap().first_row_secs;
    let ratio = largest_first_row / point.first_row_secs.max(1e-12);
    eprintln!(
        "  first-row latency, {largest}-row scan vs point query: {ratio:.2}x (gate: <= 2x{})",
        if smoke { ", not enforced in smoke" } else { "" }
    );

    // Memory discipline on the streaming hot path: the same prepared
    // drain loop the server runs, metered by the counting allocator and
    // the codec copymeter.
    let hot_shape = ThroughputConfig {
        rows: 8192,
        rows_per_query: 32,
        queries_per_thread: 0,
        warmup_queries: 0,
    };
    let hot_db = Arc::new(seeded_db(hot_shape.rows));
    let meters = measure_hot_path(&hot_db, &hot_shape, &alloc_count::count);
    eprintln!(
        "  hot path: {:.3} allocs/query (budget {ALLOCS_PER_QUERY_MAX}), \
         {:.1} bytes copied/row",
        meters.allocs_per_query, meters.bytes_copied_per_row
    );

    let path = output_path();
    std::fs::write(
        &path,
        render_json(smoke, &point, &materialized, &streaming, ratio, &meters),
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());

    // The allocation budget is structural too: enforced even in smoke.
    if meters.allocs_per_query > ALLOCS_PER_QUERY_MAX {
        eprintln!(
            "FAIL: {:.3} allocs/query on the streaming hot path, budget is \
             {ALLOCS_PER_QUERY_MAX}",
            meters.allocs_per_query
        );
        std::process::exit(1);
    }

    if !smoke && ratio > 2.0 {
        eprintln!(
            "FAIL: first row of the {largest}-row streaming scan took {ratio:.2}x a point query"
        );
        std::process::exit(1);
    }
}

fn seeded_db(rows: u64) -> GuardedDatabase {
    let db = GuardedDatabase::new(GuardConfig::paper_default());
    db.execute_at("CREATE TABLE t (id INT NOT NULL, body TEXT)", 0.0)
        .unwrap();
    db.execute_at("CREATE UNIQUE INDEX t_pk ON t (id)", 0.0)
        .unwrap();
    let mut i = 0;
    while i < rows {
        let end = (i + 256).min(rows);
        let values: Vec<String> = (i..end).map(|k| format!("({k}, 'row-{k}')")).collect();
        db.execute_at(&format!("INSERT INTO t VALUES {}", values.join(", ")), 0.0)
            .unwrap();
        i = end;
    }
    db.refresh();
    db
}

fn best_of(reps: usize, mut run: impl FnMut() -> Sample) -> Sample {
    let mut best = run();
    for _ in 1..reps {
        let s = run();
        if s.first_row_secs < best.first_row_secs {
            best = s;
        }
    }
    best
}

/// The pre-streaming shape: the whole result set is executed, buffered,
/// and priced before any row could be released.
fn run_materialized(db: &GuardedDatabase, sql: &str) -> Sample {
    let started = Instant::now();
    let resp = db.execute_with_deadline(sql).unwrap();
    let total_secs = started.elapsed().as_secs_f64();
    let rows = resp.tuple_delays.len() as u64;
    Sample {
        rows,
        // No row exists until the full drain finishes.
        first_row_secs: total_secs,
        total_secs,
        peak_buffered_rows: rows,
    }
}

fn run_streaming(
    db: &GuardedDatabase,
    sql: &str,
    chunk_rows: usize,
    first_row_only: bool,
) -> Sample {
    let started = Instant::now();
    db.execute_streaming(sql, |query| match query {
        StreamedQuery::Rows(mut stream) => {
            let mut first_row_secs = 0.0;
            let mut rows = 0u64;
            let mut peak = 0u64;
            // Time-to-first-tuple is the pipeline's latency floor, so the
            // first pull asks for a single row; the drain then continues
            // in server-sized chunks.
            let mut next = 1;
            while let Some(chunk) = stream.next_chunk(next).unwrap() {
                next = chunk_rows;
                let _charged = stream.charge(&chunk);
                if rows == 0 {
                    first_row_secs = started.elapsed().as_secs_f64();
                }
                rows += chunk.len() as u64;
                peak = peak.max(chunk.len() as u64);
                // The chunk drops here, as it would after handing its
                // deadlines to the scheduler.
                if first_row_only {
                    break;
                }
            }
            Sample {
                rows,
                first_row_secs,
                total_secs: started.elapsed().as_secs_f64(),
                peak_buffered_rows: peak,
            }
        }
        StreamedQuery::Finished(_) => panic!("expected a SELECT"),
    })
    .unwrap()
}

/// `BENCH_streaming.json` at the repository root.
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_streaming.json")
}

fn render_json(
    smoke: bool,
    point: &Sample,
    materialized: &[Sample],
    streaming: &[Sample],
    ratio: f64,
    meters: &HotPathMeters,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"streaming_pipeline\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"chunk_rows\": {CHUNK_ROWS},\n"));
    out.push_str(&format!(
        "  \"point_query_first_row_secs\": {:.9},\n",
        point.first_row_secs
    ));
    out.push_str(&format!(
        "  \"materialized\": {},\n",
        samples_json(materialized)
    ));
    out.push_str(&format!("  \"streaming\": {},\n", samples_json(streaming)));
    out.push_str(&format!(
        "  \"largest_scan_first_row_over_point_query\": {ratio:.4},\n"
    ));
    out.push_str(&format!(
        "  \"hot_path\": {{\"allocs_per_query\": {:.3}, \"bytes_copied_per_row\": {:.3}}},\n",
        meters.allocs_per_query, meters.bytes_copied_per_row
    ));
    out.push_str(&format!(
        "  \"budget\": {{\"allocs_per_query_max\": {ALLOCS_PER_QUERY_MAX:.1}}},\n"
    ));
    out.push_str(
        "  \"acceptance\": \"streaming peak_buffered_rows <= chunk_rows at every scan size \
         (always enforced); allocs_per_query <= budget on the prepared drain loop (always \
         enforced); first row of the largest scan within 2x of a one-row query (enforced on \
         the full run)\"\n",
    );
    out.push('}');
    out.push('\n');
    out
}

fn samples_json(samples: &[Sample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"rows\": {}, \"first_row_secs\": {:.9}, \"total_secs\": {:.9}, \
                 \"peak_buffered_rows\": {}}}",
                s.rows, s.first_row_secs, s.total_secs, s.peak_buffered_rows
            )
        })
        .collect();
    format!("[\n{}\n  ]", entries.join(",\n"))
}
