//! Write-path bench: mutation throughput through the front door, the
//! read-side price of the combined access+update policy, and the
//! measured §3 stale fraction against the Eq. 11/12 closed form.
//! Writes `BENCH_writes.json` at the repo root.
//!
//! ```text
//! cargo run -p delayguard-bench --release --bin writes
//! cargo run -p delayguard-bench --release --bin writes -- --smoke
//! ```
//!
//! Three numbers summarize the write path:
//!
//! * **Mutation qps.** Wall-clock throughput of INSERT/UPDATE/DELETE
//!   frames through the full stack — codec, gatekeeper, reserve-before-
//!   apply admission, engine, index maintenance, `MUTATED` reply.
//!   Mutations are never delayed, so this is pure processing cost.
//! * **Read overhead.** The same seeded point-read workload through the
//!   wire under the plain access-rate policy and under the combined
//!   `Hybrid(access, update)` policy with a live, warmed update term.
//!   The hybrid read path adds one update-tracker lookup and a
//!   max-combine per priced tuple; the gate holds the wall-clock ratio
//!   to ≤ 1.1x on full runs (timing ratios on shared CI runners are
//!   noise, so smoke records but does not enforce).
//! * **Stale fraction.** The [`StalenessCampaign`] race — a live UPDATE
//!   stream against a hottest-first extraction crawl in virtual time —
//!   must land within 10% of `stale_fraction_exact`. The race is
//!   virtual-clock deterministic, so this gate holds even in smoke.

use delayguard_core::access::AccessDelayPolicy;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::policy::GuardPolicy;
use delayguard_core::update::UpdateDelayPolicy;
use delayguard_core::GuardConfig;
use delayguard_query::StatementOutput;
use delayguard_server::gate::{GateConfig, MutationVerb};
use delayguard_storage::RowId;
use delayguard_testkit::net::{self, MutationOutcome, QueryOutcome};
use delayguard_testkit::world::{MeshLink, SimConfig, SimWorld};
use delayguard_testkit::{FaultPlan, StalenessCampaign, StalenessParams, StalenessReport};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Pinned seed: the bench is a measurement, not a property sweep; the
/// campaign suites cover random seeds.
const SEED: u64 = 2004;

/// Full-run gate on the combined-policy read path.
const READ_OVERHEAD_MAX: f64 = 1.1;
/// Relative tolerance on the measured stale fraction (both modes).
const STALE_TOLERANCE: f64 = 0.10;

fn wide_open() -> GatekeeperConfig {
    GatekeeperConfig {
        per_user_rate: 1e9,
        per_user_burst: 1e9,
        per_subnet_rate: 1e9,
        per_subnet_burst: 1e9,
        registration: RegistrationPolicy::interval(0.0),
        storefront_query_threshold: 0,
    }
}

/// A simulated deployment with `rows` directory entries, a registered
/// client link, and (for hybrid worlds) a warmed update tracker so the
/// update term prices from real rates instead of the cap.
struct Bench {
    _world: SimWorld,
    link: MeshLink,
    user: u64,
    next_qid: u32,
}

impl Bench {
    fn new(policy: GuardPolicy, rows: u64, warm_secs: f64) -> Bench {
        let world = SimWorld::new(
            SEED,
            SimConfig {
                guard: GuardConfig::paper_default().with_policy(policy),
                gate: GateConfig {
                    gatekeeper: wide_open(),
                    ..GateConfig::default()
                },
                tick: Duration::from_millis(1),
                send_queue_rows: 4096,
                faults: FaultPlan::ideal(),
            },
        );
        let db = world.db();
        db.execute_at(
            "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
            0.0,
        )
        .expect("create table");
        db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
            .expect("create index");
        let mut rids: Vec<RowId> = Vec::with_capacity(rows as usize);
        for id in 0..rows {
            let resp = db
                .execute_at(
                    &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
                    0.0,
                )
                .expect("insert row");
            match resp.output {
                StatementOutput::Inserted { rids: mut r } => {
                    rids.push(r.pop().expect("one rid per insert"))
                }
                other => panic!("unexpected insert output: {other:?}"),
            }
        }
        if warm_secs > 0.0 && !rids.is_empty() {
            // Zipf(1) update history: both worlds get identical warm
            // counts so the only difference is the pricing policy.
            let counts: Vec<(RowId, f64)> = rids
                .iter()
                .enumerate()
                .map(|(i, &rid)| (rid, 2.0 / (i + 1) as f64 * warm_secs))
                .collect();
            db.warm_updates("directory", &counts, 0.0);
        }
        world.run_for(warm_secs.max(1.0));
        let mut world = world;
        let mut link = world.connect_link([10, 0, 0, 1]);
        let (user, _) = net::register_until_admitted(&mut world, &mut link, [0; 4], 600.0)
            .expect("registration");
        Bench {
            _world: world,
            link,
            user,
            next_qid: 1,
        }
    }

    fn qid(&mut self) -> u32 {
        let q = self.next_qid;
        self.next_qid += 1;
        q
    }

    fn mutate(&mut self, verb: MutationVerb, sql: &str) -> u32 {
        let qid = self.qid();
        match net::run_mutation(&mut self.link, qid, self.user, verb, sql, 60.0)
            .expect("link alive")
        {
            MutationOutcome::Mutated { rows, .. } => rows,
            other => panic!("{sql}: {other:?}"),
        }
    }

    fn read(&mut self, id: u64) -> f64 {
        let qid = self.qid();
        let sql = format!("SELECT * FROM directory WHERE id = {id}");
        match net::run_query(&mut self.link, qid, self.user, &sql, 365.0 * 86400.0)
            .expect("link alive")
        {
            QueryOutcome::Rows { delay_secs, .. } => delay_secs,
            other => panic!("id {id}: {other:?}"),
        }
    }
}

/// Wall-clock throughput of the mutation pipeline: `inserts` fresh rows,
/// one UPDATE per row, then DELETE of every even id — all through the
/// wire under the production hybrid policy.
struct MutationRun {
    mutations: u64,
    elapsed_secs: f64,
    qps: f64,
}

fn measure_mutations(inserts: u64) -> MutationRun {
    let policy = GuardPolicy::Hybrid(
        AccessDelayPolicy::new(1.0, 1.0),
        UpdateDelayPolicy::new(0.3).with_cap(10.0),
    );
    // Start empty: the insert leg is part of the measurement.
    let mut bench = Bench::new(policy, 0, 0.0);
    let deletes = inserts / 2;
    let wall = Instant::now();
    for id in 0..inserts {
        let rows = bench.mutate(
            MutationVerb::Insert,
            &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
        );
        assert_eq!(rows, 1, "insert {id}");
    }
    for id in 0..inserts {
        let rows = bench.mutate(
            MutationVerb::Update,
            &format!("UPDATE directory SET entry = 'touched' WHERE id = {id}"),
        );
        assert_eq!(rows, 1, "update {id}");
    }
    for id in (0..inserts).filter(|id| id % 2 == 0).take(deletes as usize) {
        let rows = bench.mutate(
            MutationVerb::Delete,
            &format!("DELETE FROM directory WHERE id = {id}"),
        );
        assert_eq!(rows, 1, "delete {id}");
    }
    let elapsed_secs = wall.elapsed().as_secs_f64();
    let mutations = inserts * 2 + deletes;
    MutationRun {
        mutations,
        elapsed_secs,
        qps: mutations as f64 / elapsed_secs,
    }
}

/// One policy's read measurement: `batches` timed batches of
/// `passes × rows` point reads; the best batch is the comparison basis
/// (minimum filters scheduler noise the same way on both worlds).
struct ReadRun {
    queries: u64,
    best_batch_secs: f64,
    qps: f64,
    virtual_delay_secs: f64,
}

fn measure_reads(policy: GuardPolicy, rows: u64, passes: u32, batches: u32) -> ReadRun {
    let mut bench = Bench::new(policy, rows, 10_000.0);
    let per_batch = passes as u64 * rows;
    let mut best = f64::INFINITY;
    let mut virtual_delay_secs = 0.0;
    for _ in 0..batches {
        let wall = Instant::now();
        for _ in 0..passes {
            for id in 0..rows {
                virtual_delay_secs += bench.read(id);
            }
        }
        best = best.min(wall.elapsed().as_secs_f64());
    }
    ReadRun {
        queries: per_batch * batches as u64,
        best_batch_secs: best,
        qps: per_batch as f64 / best,
        virtual_delay_secs,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let wall = Instant::now();

    let (inserts, rows, passes, batches) = if smoke {
        (256u64, 64u64, 2u32, 3u32)
    } else {
        (2048, 128, 8, 3)
    };

    eprintln!(
        "mutation pipeline, hybrid policy ({} inserts + updates + deletes{})",
        inserts,
        if smoke { ", smoke" } else { "" }
    );
    let mutation = measure_mutations(inserts);
    eprintln!(
        "  {} mutations in {:.3}s wall: {:.0} qps",
        mutation.mutations, mutation.elapsed_secs, mutation.qps
    );

    let access = AccessDelayPolicy::new(1.5, 1.0);
    eprintln!(
        "read path, plain access-rate policy ({rows} rows x {passes} passes x {batches} batches)"
    );
    let plain = measure_reads(GuardPolicy::AccessRate(access), rows, passes, batches);
    eprintln!(
        "  best batch {:.4}s ({:.0} qps), {:.2} virtual delay-seconds charged",
        plain.best_batch_secs, plain.qps, plain.virtual_delay_secs
    );
    eprintln!("read path, combined access+update policy (live warmed update term)");
    let hybrid = measure_reads(
        GuardPolicy::Hybrid(access, UpdateDelayPolicy::new(0.3).with_cap(10.0)),
        rows,
        passes,
        batches,
    );
    eprintln!(
        "  best batch {:.4}s ({:.0} qps), {:.2} virtual delay-seconds charged",
        hybrid.best_batch_secs, hybrid.qps, hybrid.virtual_delay_secs
    );
    let overhead = hybrid.best_batch_secs / plain.best_batch_secs;
    eprintln!("  combined-policy read overhead: {overhead:.3}x (gate <= {READ_OVERHEAD_MAX}x on full runs)");

    eprintln!("§3 staleness race (n = 512, alpha = 1, c = 0.3)");
    let mut campaign = StalenessCampaign::new(SEED, StalenessParams::default());
    let report = campaign.run();
    eprintln!(
        "  stale {}/{} = {:.4} (exact form {:.4}, S_max {:.4}); {} updates, crawl {:.1}s virtual, mean age {:.1}s",
        report.stale,
        report.n,
        report.stale_fraction,
        report.expected_fraction,
        report.smax,
        report.updates_issued,
        report.crawl_secs,
        report.mean_age_secs
    );

    let elapsed = wall.elapsed().as_secs_f64();
    eprintln!("{elapsed:.2}s wall total");

    let path = output_path();
    std::fs::write(
        &path,
        render_json(
            smoke, &mutation, &plain, &hybrid, overhead, &report, elapsed,
        ),
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());

    let fail = |cond: bool, msg: &str| {
        if cond {
            eprintln!("FAIL: {msg}");
            std::process::exit(1);
        }
    };
    // The staleness race runs on the virtual clock: deterministic, so
    // enforced even in smoke.
    let stale_err =
        (report.stale_fraction - report.expected_fraction).abs() / report.expected_fraction;
    fail(
        stale_err > STALE_TOLERANCE,
        &format!(
            "stale fraction {:.4} is {:.1}% off the closed form {:.4}",
            report.stale_fraction,
            stale_err * 100.0,
            report.expected_fraction
        ),
    );
    fail(
        report.min_margin_secs < -1e-6,
        &format!("early release: margin {}", report.min_margin_secs),
    );
    // Wall-clock ratios are noise on shared runners: full runs only.
    if !smoke {
        fail(
            overhead > READ_OVERHEAD_MAX,
            &format!("combined-policy read overhead {overhead:.3}x > {READ_OVERHEAD_MAX}x"),
        );
    }
}

/// `BENCH_writes.json` at the repository root.
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_writes.json")
}

fn render_json(
    smoke: bool,
    mutation: &MutationRun,
    plain: &ReadRun,
    hybrid: &ReadRun,
    overhead: f64,
    report: &StalenessReport,
    wall_secs: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"writes\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str("  \"mutations\": {\n");
    out.push_str(&format!("    \"count\": {},\n", mutation.mutations));
    out.push_str(&format!(
        "    \"elapsed_secs\": {:.6},\n",
        mutation.elapsed_secs
    ));
    out.push_str(&format!("    \"qps\": {:.2}\n", mutation.qps));
    out.push_str("  },\n");
    out.push_str("  \"reads\": {\n");
    out.push_str(&format!(
        "    \"access_rate\": {{\"queries\": {}, \"best_batch_secs\": {:.6}, \"qps\": {:.2}, \"virtual_delay_secs\": {:.4}}},\n",
        plain.queries, plain.best_batch_secs, plain.qps, plain.virtual_delay_secs
    ));
    out.push_str(&format!(
        "    \"hybrid\": {{\"queries\": {}, \"best_batch_secs\": {:.6}, \"qps\": {:.2}, \"virtual_delay_secs\": {:.4}}},\n",
        hybrid.queries, hybrid.best_batch_secs, hybrid.qps, hybrid.virtual_delay_secs
    ));
    out.push_str(&format!("    \"overhead\": {overhead:.4},\n"));
    out.push_str(&format!("    \"overhead_max\": {READ_OVERHEAD_MAX}\n"));
    out.push_str("  },\n");
    out.push_str("  \"staleness\": {\n");
    out.push_str(&format!("    \"n\": {},\n", report.n));
    out.push_str(&format!(
        "    \"stale_fraction\": {:.6},\n",
        report.stale_fraction
    ));
    out.push_str(&format!(
        "    \"expected_fraction\": {:.6},\n",
        report.expected_fraction
    ));
    out.push_str(&format!("    \"smax\": {:.6},\n", report.smax));
    out.push_str(&format!(
        "    \"updates_issued\": {},\n",
        report.updates_issued
    ));
    out.push_str(&format!("    \"crawl_secs\": {:.4},\n", report.crawl_secs));
    out.push_str(&format!(
        "    \"total_delay_secs\": {:.4},\n",
        report.total_delay_secs
    ));
    out.push_str(&format!(
        "    \"mean_age_secs\": {:.4},\n",
        report.mean_age_secs
    ));
    out.push_str(&format!(
        "    \"max_age_secs\": {:.4},\n",
        report.max_age_secs
    ));
    out.push_str(&format!(
        "    \"min_margin_secs\": {:.6}\n",
        report.min_margin_secs
    ));
    out.push_str("  },\n");
    out.push_str(&format!("  \"wall_secs\": {wall_secs:.3},\n"));
    out.push_str(
        "  \"acceptance\": \"measured stale fraction within 10% of the Eq. 11/12 closed form \
         and no early release (enforced on every run: the race is virtual-clock \
         deterministic); combined-policy read path <= 1.1x the plain access-rate wall cost \
         (full runs only: wall ratios on shared runners are noise)\"\n",
    );
    out.push('}');
    out.push('\n');
    out
}
