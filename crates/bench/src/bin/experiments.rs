//! Regenerate every table and figure of the paper's evaluation (§4).
//!
//! Usage:
//!
//! ```text
//! experiments                  # run everything (full sizes; ~1-2 min)
//! experiments --quick          # smaller Table 1 sizes (seconds)
//! experiments fig1 table3 ...  # run selected artifacts only
//! ```
//!
//! Artifact ids: fig1, table1, table2, table3, fig2, fig3, table4,
//! fig4, fig5, fig6 (aliases: fig456), table5, analysis.

use delayguard_bench::experiments;
use delayguard_sim::OverheadConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let want = |ids: &[&str]| -> bool {
        selected.is_empty() || ids.iter().any(|id| selected.contains(id))
    };

    println!("delayguard experiments — reproducing Jayapandian et al., SDM/VLDB 2004\n");

    if want(&["fig1"]) {
        let (_, rendered) = experiments::fig1();
        println!("{rendered}");
    }
    if want(&["table1"]) {
        let sizes: &[u64] = if quick {
            &[10_000, 50_000, 100_000]
        } else {
            &[100_000, 500_000, 1_000_000]
        };
        eprintln!(
            "[table1] replaying scaled traces (largest: {} objects)...",
            sizes.last().unwrap()
        );
        let (_, rendered) = experiments::table1(sizes);
        println!("{rendered}");
    }
    if want(&["table2"]) {
        let (_, rendered) = experiments::table2();
        println!("{rendered}");
    }
    if want(&["table3"]) {
        let (_, rendered) = experiments::table3();
        println!("{rendered}");
    }
    if want(&["fig2", "fig3"]) {
        let (_, _, rendered) = experiments::fig2_fig3();
        println!("{rendered}");
    }
    if want(&["table4"]) {
        let (_, rendered) = experiments::table4();
        println!("{rendered}");
    }
    if want(&["fig4", "fig5", "fig6", "fig456"]) {
        let cfg = if quick {
            experiments::UpdateSkewConfig {
                objects: 20_000,
                total_update_rate: 20_000.0,
                ..Default::default()
            }
        } else {
            experiments::UpdateSkewConfig::default()
        };
        let (_, rendered) = experiments::fig456(&cfg, &experiments::paper_alphas());
        println!("{rendered}");
    }
    if want(&["table5"]) {
        let cfg = if quick {
            OverheadConfig {
                rows: 2_000,
                ..Default::default()
            }
        } else {
            OverheadConfig::default()
        };
        let (_, rendered) = experiments::table5(&cfg);
        println!("{rendered}");
    }
    if want(&["analysis"]) {
        println!("{}", experiments::analysis_table());
    }
}
