//! Cluster bench: router hop overhead and delta-sync convergence.
//! Writes `BENCH_cluster.json` at the repo root.
//!
//! ```text
//! cargo run -p delayguard-bench --release --bin cluster
//! cargo run -p delayguard-bench --release --bin cluster -- --smoke
//! ```
//!
//! Two questions about the sharded front door:
//!
//! * **What does the router hop cost?** The same warmed point query is
//!   crawled through a 4-node [`ClusterCampaign`] twice: through the
//!   router (client → router → owning shard) and over a connection
//!   pinned straight to the owning node (client → node). Same world,
//!   same pricing stack, same codec on every hop — the ratio isolates
//!   exactly the routing layer: registration broadcast, per-query SQL
//!   routing, per-node sink fan-out. Gate: the routed point query stays
//!   within 2x of the direct one (enforced on the full run). The
//!   single-node testkit world is also measured, as context: that gap
//!   is the *replication tax* (merged-snapshot rebuilds over all N
//!   shards' aggregates), paid by every node of a replicated cluster
//!   whether or not a router is in front.
//! * **How fast does a traffic shift propagate?** After the cluster
//!   converges on the Zipf warm state, one tuple's owner absorbs a
//!   burst that doubles `fmax`. Every other node keeps charging the
//!   stale price until a gossip round folds the delta in; the bench
//!   probes a remote shard until its charged delay matches the
//!   post-shift closed form, and reports the virtual seconds the shift
//!   took to converge — which must stay within one sync interval plus
//!   the probing granularity.

use delayguard_cluster::{ClusterCampaign, ClusterCampaignParams};
use delayguard_core::analysis;
use delayguard_testkit::campaign::Campaign;
use delayguard_workload::generalized_harmonic;
use std::path::PathBuf;
use std::time::Instant;

/// Timing repetitions; the minimum per-query time is reported.
const REPS: usize = 3;
/// Nodes in the sharded world.
const NODES: usize = 4;
/// Gossip cadence for the convergence measurement (virtual seconds).
const SYNC_INTERVAL_SECS: f64 = 60.0;
/// Burst size for the traffic shift, in units of `seed_scale` (1.0
/// doubles the top count, so `fmax` moves from `1/H` to `2/(H+1)`).
const BOOST_SCALE: f64 = 1.0;
/// A probe counts as converged when the charged delay is within this
/// relative error of the post-shift closed form.
const CONVERGED_REL_ERR: f64 = 0.01;

#[derive(Debug, Clone, Copy)]
struct Timing {
    queries: u64,
    /// Wall-clock seconds for the whole crawl (best of [`REPS`]).
    wall_secs: f64,
}

impl Timing {
    fn per_query_secs(self) -> f64 {
        self.wall_secs / self.queries as f64
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, queries) = if smoke {
        (300, 150u64)
    } else {
        (1100, 1500u64)
    };
    eprintln!(
        "cluster bench: n={n}, {NODES} nodes, {queries} point queries{}",
        if smoke { " (smoke)" } else { "" }
    );

    // ---- router hop overhead ------------------------------------------
    // The same rank-1 point query, repeated, against the same warmed
    // cluster: routed vs pinned-to-owner. Fresh identity per rep; the
    // query's virtual delay costs no wall clock. Gossip is paused for
    // the timing — the crawl spans hours of virtual time, and
    // background delta folds would otherwise swamp the hop being
    // measured (replication cost is the second metric's job).
    let ranks = vec![1u64; queries as usize];

    let mut cluster = ClusterCampaign::new(1, params(n));
    cluster.world().set_sync_enabled(false);
    // Interleave the reps: every crawl leaves its connection open (as a
    // real client might), so alternating keeps the per-step sink-scan
    // load balanced between the two sides.
    let mut routed = None;
    let mut direct = None;
    for rep in 1..=REPS as u8 {
        let started = Instant::now();
        let report = cluster.sequential_crawl([10, 0, 0, rep], &ranks);
        let t = Timing {
            queries,
            wall_secs: started.elapsed().as_secs_f64(),
        };
        assert_eq!(report.queries, queries);
        assert_eq!(report.refused, 0, "gatekeeper is wide open");
        routed = Some(min_timing(routed, t));

        let started = Instant::now();
        let report = cluster.direct_crawl(0, [10, 1, 0, rep], &ranks);
        let t = Timing {
            queries,
            wall_secs: started.elapsed().as_secs_f64(),
        };
        assert_eq!(report.queries, queries);
        assert_eq!(report.refused, 0);
        direct = Some(min_timing(direct, t));
    }
    let (routed, direct) = (routed.unwrap(), direct.unwrap());

    // Context: the same crawl against a single node owning the whole
    // relation (no router, no replicas). The direct-node gap above this
    // is the replication tax, not the router's.
    let mut single = Campaign::new(1, params(n).base);
    let single_node = best_of(REPS, |rep| {
        let started = Instant::now();
        let report = single.sequential_crawl([10, 2, 0, rep], &ranks);
        assert_eq!(report.queries, queries);
        assert_eq!(report.refused, 0);
        Timing {
            queries,
            wall_secs: started.elapsed().as_secs_f64(),
        }
    });

    let ratio = routed.per_query_secs() / direct.per_query_secs().max(1e-12);
    eprintln!(
        "  point query: {:.1}us routed / {:.1}us direct node = {ratio:.2}x \
         (gate: <= 2x{}); {:.1}us single-node world",
        routed.per_query_secs() * 1e6,
        direct.per_query_secs() * 1e6,
        if smoke { ", not enforced in smoke" } else { "" },
        single_node.per_query_secs() * 1e6,
    );

    // ---- delta-sync convergence after a traffic shift -----------------
    // Rank 1 lives on node 0; rank 2 lives on node 1. Burst rank 1,
    // then probe rank 2 (priced by node 1) until node 1's charged delay
    // reflects the doubled fmax it can only have learned via gossip.
    let mut campaign = ClusterCampaign::new(2, params(n));
    let base = &campaign.params().base;
    let harmonic = generalized_harmonic(base.n, base.alpha);
    let fmax_post = (1.0 + BOOST_SCALE) / (harmonic + BOOST_SCALE);
    let expected_pre = campaign.analytic_delay_at_rank(2);
    let expected_post = analysis::delay_at_rank(base.n, base.alpha, base.beta, fmax_post, 2);
    let boost = BOOST_SCALE * base.seed_scale;

    let pre = campaign.probe_delay([10, 3, 0, 1], 2);
    assert!(
        rel_err(pre, expected_pre) <= CONVERGED_REL_ERR,
        "pre-shift probe {pre} vs closed form {expected_pre}"
    );

    let shifted_at = campaign.world().now_secs();
    campaign.shift_traffic(1, boost);
    let probe_step = SYNC_INTERVAL_SECS / 8.0;
    let deadline = shifted_at + 4.0 * SYNC_INTERVAL_SECS;
    let mut probes = 0u64;
    let converged_secs = loop {
        campaign.world().run_for(probe_step);
        probes += 1;
        let d = campaign.probe_delay([10, 3, (probes >> 8) as u8, probes as u8], 2);
        if rel_err(d, expected_post) <= CONVERGED_REL_ERR {
            break campaign.world().now_secs() - shifted_at;
        }
        assert!(
            campaign.world().now_secs() < deadline,
            "traffic shift failed to converge: probe {d} vs post-shift closed form \
             {expected_post} after {:.0} virtual secs",
            campaign.world().now_secs() - shifted_at,
        );
    };
    eprintln!(
        "  traffic shift converged in {converged_secs:.1} virtual secs \
         ({probes} probes, sync interval {SYNC_INTERVAL_SECS:.0}s)"
    );
    // Convergence is bounded by the next gossip tick plus the probing
    // granularity — structural, so always enforced.
    assert!(
        converged_secs <= SYNC_INTERVAL_SECS + 2.0 * probe_step,
        "convergence took {converged_secs}s, sync interval is {SYNC_INTERVAL_SECS}s"
    );

    let path = output_path();
    std::fs::write(
        &path,
        render_json(
            smoke,
            n,
            queries,
            routed,
            direct,
            single_node,
            ratio,
            converged_secs,
            probes,
        ),
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());

    if !smoke && ratio > 2.0 {
        eprintln!("FAIL: routed point query took {ratio:.2}x the direct-node one");
        std::process::exit(1);
    }
}

fn params(n: u64) -> ClusterCampaignParams {
    let mut p = ClusterCampaignParams::default();
    p.base.n = n;
    p.nodes = NODES;
    p.sync_interval_secs = SYNC_INTERVAL_SECS;
    p
}

fn rel_err(measured: f64, expected: f64) -> f64 {
    (measured - expected).abs() / expected
}

fn best_of(reps: usize, mut run: impl FnMut(u8) -> Timing) -> Timing {
    let mut best = run(1);
    for rep in 2..=reps as u8 {
        let t = run(rep);
        if t.wall_secs < best.wall_secs {
            best = t;
        }
    }
    best
}

fn min_timing(best: Option<Timing>, t: Timing) -> Timing {
    match best {
        Some(b) if b.wall_secs <= t.wall_secs => b,
        _ => t,
    }
}

/// `BENCH_cluster.json` at the repository root.
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_cluster.json")
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    n: u64,
    queries: u64,
    routed: Timing,
    direct: Timing,
    single_node: Timing,
    ratio: f64,
    converged_secs: f64,
    probes: u64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cluster\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"nodes\": {NODES},\n"));
    out.push_str(&format!("  \"rows\": {n},\n"));
    out.push_str(&format!("  \"point_queries\": {queries},\n"));
    out.push_str(&format!(
        "  \"routed_per_query_secs\": {:.9},\n",
        routed.per_query_secs()
    ));
    out.push_str(&format!(
        "  \"direct_node_per_query_secs\": {:.9},\n",
        direct.per_query_secs()
    ));
    out.push_str(&format!(
        "  \"single_node_world_per_query_secs\": {:.9},\n",
        single_node.per_query_secs()
    ));
    out.push_str(&format!("  \"routed_over_direct_node\": {ratio:.4},\n"));
    out.push_str(&format!(
        "  \"sync_interval_secs\": {SYNC_INTERVAL_SECS:.1},\n"
    ));
    out.push_str(&format!(
        "  \"shift_convergence_virtual_secs\": {converged_secs:.3},\n"
    ));
    out.push_str(&format!("  \"shift_convergence_probes\": {probes},\n"));
    out.push_str(
        "  \"acceptance\": \"traffic shift converges within one sync interval plus probing \
         granularity (always enforced); routed point query within 2x of the same query pinned \
         straight to the owning node (enforced on the full run)\"\n",
    );
    out.push('}');
    out.push('\n');
    out
}
