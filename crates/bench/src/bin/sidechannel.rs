//! Timing side-channel bench: rank-inference accuracy, shaped vs
//! control, and the honest-user price of delay shaping. Writes
//! `BENCH_sidechannel.json` at the repo root.
//!
//! ```text
//! cargo run -p delayguard-bench --release --bin sidechannel
//! cargo run -p delayguard-bench --release --bin sidechannel -- --smoke
//! ```
//!
//! Two numbers summarize the defense:
//!
//! * **Inference accuracy.** A rank-inference crawler times every tuple
//!   of the `CampaignParams::sidechannel` world once and sorts by
//!   observed response time. Against the unshaped control its Kendall τ
//!   is ≈ 1 (the delay policy is a monotone function of the secret rank
//!   order); against the shaped world τ collapses to the cross-bucket
//!   ceiling (≈ 0.06) and tail recall falls to chance. The adaptive
//!   probe-and-fit attacker is measured the same way.
//! * **Honest-user inflation.** Shaping rounds every delay up to a
//!   bucket edge and adds jitter, so the median-rank user pays
//!   `quantize(d(median)) · (1 + jitter/2)` instead of `d(median)` —
//!   the reported inflation factor is that ratio, measured on the wire.
//!
//! `--smoke` runs the same shape (the campaign is virtual-clock fast)
//! but skips the accuracy gates; the JSON is written either way.

use delayguard_testkit::campaign::{Campaign, CampaignParams, RankInferenceReport};
use std::path::PathBuf;
use std::time::Instant;

/// Pinned seed: the bench is a measurement, not a property sweep; the
/// campaign suites cover random seeds.
const SEED: u64 = 2004;

const USER_IP: [u8; 4] = [172, 16, 0, 1];
const CRAWLER_IP: [u8; 4] = [10, 0, 0, 1];
const PROBER_IP: [u8; 4] = [10, 0, 1, 1];

/// One world's measurements: the median-rank user's charge and the full
/// rank-inference sweep.
struct WorldRun {
    median_user_secs: f64,
    report: RankInferenceReport,
    analytic_total: f64,
    analytic_ceiling: f64,
}

fn run_world(shaped: bool) -> WorldRun {
    let mut campaign = Campaign::new(SEED, CampaignParams::sidechannel(shaped));
    let median = campaign.median_rank();
    let probe = campaign.crawl_observations(USER_IP, &[median]);
    let report = campaign.rank_inference_crawl(CRAWLER_IP);
    let analytic_total = if shaped {
        campaign.analytic_shaped_total()
    } else {
        campaign.analytic_total()
    };
    WorldRun {
        median_user_secs: probe.observations[0].charged_secs,
        report,
        analytic_total,
        analytic_ceiling: campaign.analytic_tau_ceiling(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let wall = Instant::now();
    let n = CampaignParams::sidechannel(false).n;

    eprintln!("rank-inference sweep, control world (n = {n}, shaping off)");
    let control = run_world(false);
    eprintln!(
        "  tau {:.4}  tail recall {:.3}  adversary total {:.0}s",
        control.report.tau, control.report.tail_recall, control.report.sweep.total_charged_secs
    );

    eprintln!("rank-inference sweep, shaped world");
    let shaped = run_world(true);
    eprintln!(
        "  tau {:.4} (analytic ceiling {:.4})  tail recall {:.3}  adversary total {:.0}s",
        shaped.report.tau,
        shaped.analytic_ceiling,
        shaped.report.tail_recall,
        shaped.report.sweep.total_charged_secs
    );

    let tail_k = (n as usize) / 8;
    eprintln!("adaptive probe-and-fit attacker, both worlds");
    let mut c = Campaign::new(SEED, CampaignParams::sidechannel(false));
    let adaptive_control = c.adaptive_probe_attack(PROBER_IP, 32, tail_k);
    let mut s = Campaign::new(SEED, CampaignParams::sidechannel(true));
    let adaptive_shaped = s.adaptive_probe_attack(PROBER_IP, 32, tail_k);
    eprintln!(
        "  control: fitted exponent {:.3} (true 2.0), tail capture {:.3}; \
         shaped: tail capture {:.3}",
        adaptive_control.fitted_exponent,
        adaptive_control.tail_capture,
        adaptive_shaped.tail_capture
    );

    let inflation = shaped.median_user_secs / control.median_user_secs;
    let attack_ratio =
        shaped.report.sweep.total_charged_secs / control.report.sweep.total_charged_secs;
    let elapsed = wall.elapsed().as_secs_f64();
    eprintln!(
        "median user pays {:.3}s shaped vs {:.3}s raw ({inflation:.2}x); \
         full-table attack pays {attack_ratio:.2}x; {elapsed:.2}s wall",
        shaped.median_user_secs, control.median_user_secs
    );

    let path = output_path();
    std::fs::write(
        &path,
        render_json(
            smoke,
            n,
            tail_k,
            &control,
            &shaped,
            &adaptive_control,
            &adaptive_shaped,
            inflation,
            attack_ratio,
            elapsed,
        ),
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());

    if !smoke {
        let fail = |cond: bool, msg: &str| {
            if cond {
                eprintln!("FAIL: {msg}");
                std::process::exit(1);
            }
        };
        fail(
            control.report.tau < 0.9,
            &format!("control tau {:.4} < 0.9", control.report.tau),
        );
        fail(
            shaped.report.tau.abs() > 0.15,
            &format!("shaped |tau| {:.4} > 0.15", shaped.report.tau.abs()),
        );
        fail(
            inflation > 10.0,
            &format!("median-user inflation {inflation:.2}x > 10x"),
        );
    }
}

/// `BENCH_sidechannel.json` at the repository root.
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sidechannel.json")
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    n: u64,
    tail_k: usize,
    control: &WorldRun,
    shaped: &WorldRun,
    adaptive_control: &delayguard_testkit::AdaptiveReport,
    adaptive_shaped: &delayguard_testkit::AdaptiveReport,
    inflation: f64,
    attack_ratio: f64,
    wall_secs: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"sidechannel\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"rows\": {n},\n"));
    out.push_str(&format!("  \"tail_k\": {tail_k},\n"));
    out.push_str(&format!("  \"control_tau\": {:.6},\n", control.report.tau));
    out.push_str(&format!("  \"shaped_tau\": {:.6},\n", shaped.report.tau));
    out.push_str(&format!(
        "  \"analytic_shaped_tau_ceiling\": {:.6},\n",
        shaped.analytic_ceiling
    ));
    out.push_str(&format!(
        "  \"control_tail_recall\": {:.6},\n",
        control.report.tail_recall
    ));
    out.push_str(&format!(
        "  \"shaped_tail_recall\": {:.6},\n",
        shaped.report.tail_recall
    ));
    out.push_str(&format!(
        "  \"adaptive_control_fitted_exponent\": {:.6},\n",
        adaptive_control.fitted_exponent
    ));
    out.push_str(&format!(
        "  \"adaptive_control_tail_capture\": {:.6},\n",
        adaptive_control.tail_capture
    ));
    out.push_str(&format!(
        "  \"adaptive_shaped_tail_capture\": {:.6},\n",
        adaptive_shaped.tail_capture
    ));
    out.push_str(&format!(
        "  \"control_median_user_secs\": {:.6},\n",
        control.median_user_secs
    ));
    out.push_str(&format!(
        "  \"shaped_median_user_secs\": {:.6},\n",
        shaped.median_user_secs
    ));
    out.push_str(&format!("  \"honest_median_inflation\": {inflation:.4},\n"));
    out.push_str(&format!(
        "  \"control_adversary_total_secs\": {:.3},\n",
        control.report.sweep.total_charged_secs
    ));
    out.push_str(&format!(
        "  \"shaped_adversary_total_secs\": {:.3},\n",
        shaped.report.sweep.total_charged_secs
    ));
    out.push_str(&format!(
        "  \"analytic_control_total_secs\": {:.3},\n",
        control.analytic_total
    ));
    out.push_str(&format!(
        "  \"analytic_shaped_total_secs\": {:.3},\n",
        shaped.analytic_total
    ));
    out.push_str(&format!("  \"attack_cost_ratio\": {attack_ratio:.4},\n"));
    out.push_str(&format!("  \"wall_secs\": {wall_secs:.3},\n"));
    out.push_str(
        "  \"acceptance\": \"control tau >= 0.9 and shaped |tau| <= 0.15 (gated on full runs): \
         shaping collapses rank inference to the cross-bucket ceiling while the median user's \
         delay inflates by a bounded quantization factor\"\n",
    );
    out.push_str("}\n");
    out
}
