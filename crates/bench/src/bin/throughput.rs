//! Concurrent-throughput sweep runner: measures guarded-query qps at
//! 1/2/4/8 threads under the old global-mutex design, the lock-free
//! snapshot path, and the prepared zero-copy pipeline, and writes
//! `BENCH_throughput.json` at the repo root.
//!
//! ```text
//! cargo run -p delayguard-bench --release --bin throughput
//! cargo run -p delayguard-bench --release --bin throughput -- --smoke
//! ```
//!
//! `--smoke` runs a tiny shape for CI: it checks the harness end to end
//! and still enforces the allocation budget (allocation counts are exact,
//! not load-dependent), but skips the timing gates (qps on shared CI
//! runners is noise; the acceptance numbers come from the full run).

use delayguard_bench::throughput::{
    locked_single_mutex_config, measure_hot_path, run_with_stats_storm, seeded_db,
    snapshot_sharded_config, sweep, sweep_prepared, HotPathMeters, ThroughputConfig,
    ThroughputSample,
};
use std::path::PathBuf;

#[path = "../alloc_count.rs"]
mod alloc_count;

const THREADS: &[usize] = &[1, 2, 4, 8];

/// Committed pre-PR single-thread qps of the then-best path
/// (`snapshot_sharded`, ad-hoc statements through
/// `execute_stmt_with_deadline`), from `BENCH_throughput.json` as of the
/// streaming-executor PR. The zero-copy gate measures against this fixed
/// snapshot, so a regression in the new pipeline cannot hide behind a
/// faster machine re-measuring its own baseline.
const PRE_PR_SINGLE_THREAD_QPS: f64 = 51_798.19;
/// Full runs must beat the recorded baseline by at least this factor on
/// one thread. Single-thread speedup needs no hardware parallelism, so
/// unlike the 8-thread scaling gate it is enforced on every full run.
const SINGLE_THREAD_SPEEDUP_MIN: f64 = 3.0;
/// Steady-state allocations per query through the prepared pipeline.
/// Currently: one queue node for the recorded access event and one keys
/// vector inside it. Enforced even in smoke — counts are exact.
const ALLOCS_PER_QUERY_MAX: f64 = 2.0;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke {
        ThroughputConfig::smoke()
    } else {
        ThroughputConfig::default()
    };
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!(
        "concurrent throughput sweep: {} rows, {} rows/query, {} queries/thread, \
         {hardware_threads} hardware threads{}",
        shape.rows,
        shape.rows_per_query,
        shape.queries_per_thread,
        if smoke { " (smoke)" } else { "" }
    );

    eprintln!("-- locked_single_mutex (pre-snapshot baseline) --");
    let locked = sweep(locked_single_mutex_config(), &shape, THREADS);
    print_samples(&locked);
    eprintln!("-- snapshot_sharded (lock-free read path) --");
    let snapshot = sweep(snapshot_sharded_config(), &shape, THREADS);
    print_samples(&snapshot);
    eprintln!("-- prepared_zero_copy (allocation-free hot path) --");
    let prepared = sweep_prepared(snapshot_sharded_config(), &shape, THREADS);
    print_samples(&prepared);

    let speedup_at_8 = speedup(&locked, &snapshot, 8);
    eprintln!("snapshot speedup at 8 threads: {speedup_at_8:.2}x");

    let prepared_1t = prepared
        .iter()
        .find(|s| s.threads == 1)
        .expect("single-thread sample");
    let single_thread_speedup = prepared_1t.qps / PRE_PR_SINGLE_THREAD_QPS;
    eprintln!(
        "zero-copy single-thread: {:.0} qps, {single_thread_speedup:.2}x the recorded \
         {PRE_PR_SINGLE_THREAD_QPS:.0} qps baseline (gate: >= {SINGLE_THREAD_SPEEDUP_MIN}x{})",
        prepared_1t.qps,
        if smoke { ", not enforced in smoke" } else { "" }
    );

    // Steady-state allocation and copy accounting on the measuring
    // thread, via the counting global allocator this binary installs.
    let meters = {
        let db = seeded_db(snapshot_sharded_config(), &shape);
        measure_hot_path(&db, &shape, &alloc_count::count)
    };
    eprintln!(
        "hot path: {:.3} allocs/query (budget {ALLOCS_PER_QUERY_MAX}), \
         {:.1} bytes copied/row",
        meters.allocs_per_query, meters.bytes_copied_per_row
    );

    // Satellite experiment: 4 query workers racing a stats storm. The
    // baseline's inspection path takes the writers' exclusive lock (the
    // old `popularity_rank` behavior); the snapshot path's reads never
    // touch it.
    eprintln!("-- stats storm interference (4 workers + 1 stats thread) --");
    let storm_locked = {
        let db = seeded_db(locked_single_mutex_config(), &shape);
        run_with_stats_storm(&db, 4, &shape, true)
    };
    eprintln!("  locked_single_mutex: {:>10.0} qps", storm_locked.qps);
    let storm_snapshot = {
        let db = seeded_db(snapshot_sharded_config(), &shape);
        run_with_stats_storm(&db, 4, &shape, false)
    };
    eprintln!("  snapshot_sharded:    {:>10.0} qps", storm_snapshot.qps);

    let path = output_path();
    std::fs::write(
        &path,
        render_json(
            &shape,
            &locked,
            &snapshot,
            &prepared,
            &meters,
            single_thread_speedup,
            &storm_locked,
            &storm_snapshot,
            hardware_threads,
            smoke,
        ),
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());

    // Allocation counts are exact and machine-independent: enforced on
    // every run, smoke included.
    if meters.allocs_per_query > ALLOCS_PER_QUERY_MAX {
        eprintln!(
            "FAIL: hot path allocates {:.3} per query, budget is {ALLOCS_PER_QUERY_MAX}",
            meters.allocs_per_query
        );
        std::process::exit(1);
    }
    // The single-thread zero-copy gate needs no parallelism: enforced on
    // every full run regardless of hardware_threads.
    if !smoke && single_thread_speedup < SINGLE_THREAD_SPEEDUP_MIN {
        eprintln!(
            "FAIL: zero-copy path is {single_thread_speedup:.2}x the recorded single-thread \
             baseline, need >= {SINGLE_THREAD_SPEEDUP_MIN}x"
        );
        std::process::exit(1);
    }
    // The >= 3x parallel-scaling gate measures contention, which needs
    // real hardware parallelism: on a machine that cannot run 8 workers
    // concurrently the sweep degenerates to time-slicing one core and
    // both paths are bounded by the same total CPU. Record the numbers
    // either way, enforce only where the measurement is meaningful.
    if !smoke && hardware_threads >= 8 && speedup_at_8 < 3.0 {
        eprintln!("FAIL: snapshot path is {speedup_at_8:.2}x at 8 threads, need >= 3x");
        std::process::exit(1);
    }
    if hardware_threads < 8 {
        eprintln!(
            "note: {hardware_threads} hardware thread(s); the 8-thread speedup gate needs >= 8 \
             and was recorded but not enforced"
        );
    }
}

fn print_samples(samples: &[ThroughputSample]) {
    for s in samples {
        eprintln!(
            "  {:>2} threads: {:>10.0} qps ({:>12.0} tuples/s, {:.3}s)",
            s.threads, s.qps, s.tuples_per_sec, s.elapsed_secs
        );
    }
}

fn speedup(locked: &[ThroughputSample], snapshot: &[ThroughputSample], threads: usize) -> f64 {
    let base = locked
        .iter()
        .find(|s| s.threads == threads)
        .expect("baseline sample");
    let new = snapshot
        .iter()
        .find(|s| s.threads == threads)
        .expect("snapshot sample");
    new.qps / base.qps
}

/// `BENCH_throughput.json` at the repository root (two levels above this
/// crate's manifest).
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_throughput.json")
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    shape: &ThroughputConfig,
    locked: &[ThroughputSample],
    snapshot: &[ThroughputSample],
    prepared: &[ThroughputSample],
    meters: &HotPathMeters,
    single_thread_speedup: f64,
    storm_locked: &ThroughputSample,
    storm_snapshot: &ThroughputSample,
    hardware_threads: usize,
    smoke: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"concurrent_throughput\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"rows\": {},\n", shape.rows));
    out.push_str(&format!(
        "    \"rows_per_query\": {},\n",
        shape.rows_per_query
    ));
    out.push_str(&format!(
        "    \"queries_per_thread\": {},\n",
        shape.queries_per_thread
    ));
    out.push_str(&format!(
        "    \"warmup_queries\": {}\n",
        shape.warmup_queries
    ));
    out.push_str("  },\n");
    out.push_str("  \"results\": {\n");
    out.push_str(&format!(
        "    \"locked_single_mutex\": {},\n",
        samples_json(locked)
    ));
    out.push_str(&format!(
        "    \"snapshot_sharded\": {},\n",
        samples_json(snapshot)
    ));
    out.push_str(&format!(
        "    \"prepared_zero_copy\": {}\n",
        samples_json(prepared)
    ));
    out.push_str("  },\n");
    for threads in [2usize, 4, 8] {
        out.push_str(&format!(
            "  \"speedup_at_{}_threads\": {:.4},\n",
            threads,
            speedup(locked, snapshot, threads)
        ));
    }
    out.push_str("  \"hot_path\": {\n");
    out.push_str(&format!(
        "    \"allocs_per_query\": {:.4},\n",
        meters.allocs_per_query
    ));
    out.push_str(&format!(
        "    \"bytes_copied_per_row\": {:.2},\n",
        meters.bytes_copied_per_row
    ));
    out.push_str(&format!(
        "    \"single_thread_speedup_vs_recorded_baseline\": {single_thread_speedup:.4}\n"
    ));
    out.push_str("  },\n");
    out.push_str("  \"budget\": {\n");
    out.push_str(&format!(
        "    \"allocs_per_query_max\": {ALLOCS_PER_QUERY_MAX},\n"
    ));
    out.push_str(&format!(
        "    \"single_thread_speedup_min\": {SINGLE_THREAD_SPEEDUP_MIN},\n"
    ));
    out.push_str(&format!(
        "    \"baseline_single_thread_qps\": {PRE_PR_SINGLE_THREAD_QPS}\n"
    ));
    out.push_str("  },\n");
    out.push_str("  \"stats_storm\": {\n");
    out.push_str(&format!(
        "    \"locked_single_mutex_qps\": {:.2},\n",
        storm_locked.qps
    ));
    out.push_str(&format!(
        "    \"snapshot_sharded_qps\": {:.2},\n",
        storm_snapshot.qps
    ));
    out.push_str(&format!(
        "    \"ratio\": {:.4}\n",
        storm_snapshot.qps / storm_locked.qps
    ));
    out.push_str("  },\n");
    out.push_str(
        "  \"acceptance\": \"prepared_zero_copy single-thread qps >= 3x the recorded pre-PR \
         baseline and allocs_per_query <= budget (both enforced on every full run; the \
         allocation budget also holds in smoke); snapshot_sharded qps >= 3x \
         locked_single_mutex at 8 threads (enforced when hardware_threads >= 8; parallel \
         scaling cannot be observed on fewer)\"\n",
    );
    out.push('}');
    out.push('\n');
    out
}

fn samples_json(samples: &[ThroughputSample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "      {{\"threads\": {}, \"queries\": {}, \"elapsed_secs\": {:.6}, \"qps\": {:.2}, \"tuples_per_sec\": {:.2}}}",
                s.threads, s.queries, s.elapsed_secs, s.qps, s.tuples_per_sec
            )
        })
        .collect();
    format!("[\n{}\n    ]", entries.join(",\n"))
}
