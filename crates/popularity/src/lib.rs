//! # delayguard-popularity
//!
//! Frequency statistics for the delay defense (paper §2.3 and §4.4):
//!
//! * [`decay`] — exponential decay by inflated increments, with periodic
//!   rescaling; multi-rate tracking for non-stationary workloads.
//! * [`tracker`] — per-key decayed counts, normalized frequencies, `f_max`,
//!   and popularity ranks.
//! * [`rank`] — log-bucketed order statistics over a Fenwick tree
//!   ([`fenwick`]) giving `O(log B)` approximate ranks.
//! * [`topk`] — top-k extraction for the paper's distribution figures.
//! * [`sketch`] — a count–min sketch as a memory-bounded count synopsis.
//! * [`writebehind`] — the write-behind count cache of §4.4 that keeps
//!   read queries from becoming read-modify-write storms.
//! * [`shardqueue`] — the concurrent front end of the write-behind idea:
//!   a lock-free sharded event queue that query threads push into and a
//!   background refresher drains, in global sequence order, into the
//!   authoritative trackers.
//!
//! Concurrency correctness here is tool-checked, not review-checked: the
//! lock-free [`shardqueue`] imports its atomics through the [`sync`]
//! facade, and `tests/model.rs` (built with `--features model` plus
//! `RUSTFLAGS="--cfg delayguard_model"`) drives the same code through the
//! vendored `loom_lite` model checker, exhaustively exploring thread
//! interleavings up to a preemption bound.
//!
//! ```
//! use delayguard_popularity::{DecaySchedule, FrequencyTracker};
//!
//! let mut t = FrequencyTracker::new(DecaySchedule::new(1.000001));
//! for _ in 0..1000 { t.record(7); }
//! t.record(8);
//! assert_eq!(t.rank(7), 1);
//! assert!(t.fmax() > 0.99);
//! ```

// No unsafe outside the audited lock-free queue, and inside it every
// unsafe operation must be written out explicitly.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adaptive;
pub mod decay;
pub mod fenwick;
pub mod rank;
#[allow(unsafe_code)]
pub mod shardqueue;
pub mod sketch;
pub mod sync;
pub mod topk;
pub mod tracker;
pub mod writebehind;

pub use adaptive::AdaptiveTracker;
pub use decay::{DecaySchedule, MultiDecay};
pub use fenwick::Fenwick;
pub use rank::RankIndex;
pub use shardqueue::ShardedEventQueue;
pub use sketch::CountMinSketch;
pub use topk::top_k;
pub use tracker::FrequencyTracker;
pub use writebehind::{CountStore, MemoryStore, WriteBehindCache};
