//! Exponential decay via the *inflated increment* technique (paper §2.3).
//!
//! The paper weights each request by a factor that decays exponentially
//! with age. Discounting every counter on every request would be `O(n)` per
//! access, so instead the *increment* is inflated: at tick `t` an access
//! adds `g^t` (where `g` is the decay rate, `g ≥ 1`), and popularity is the
//! stored sum normalized by `g^t`. Older contributions are therefore worth
//! `g^(t_old - t_now) ≤ 1` of a fresh access — exactly exponential decay —
//! at `O(1)` per access.
//!
//! Inflated weights grow without bound, so the schedule signals when
//! counters must be *rescaled* (everything divided by the current weight):
//! the paper's "reset counters from time to time, at some loss of
//! precision".

/// Decay bookkeeping shared by a family of counters.
#[derive(Debug, Clone)]
pub struct DecaySchedule {
    rate: f64,
    weight: f64,
    ticks: u64,
    rescale_threshold: f64,
    rescales: u64,
}

impl DecaySchedule {
    /// A schedule with per-event decay `rate` (`1.0` = no decay). Rates
    /// slightly above 1 (e.g. `1.000001`) decay slowly; the paper sweeps
    /// `1.0..=1.00002` for per-request decay and `1.0..=5.0` for per-week
    /// decay.
    ///
    /// # Panics
    /// If `rate < 1.0` or is not finite.
    pub fn new(rate: f64) -> DecaySchedule {
        assert!(rate.is_finite() && rate >= 1.0, "decay rate must be >= 1.0");
        DecaySchedule {
            rate,
            weight: 1.0,
            ticks: 0,
            rescale_threshold: 1e100,
            rescales: 0,
        }
    }

    /// No decay: every access counts equally forever.
    pub fn none() -> DecaySchedule {
        DecaySchedule::new(1.0)
    }

    /// Override the weight threshold that triggers rescaling (testing and
    /// precision experiments).
    pub fn with_rescale_threshold(mut self, threshold: f64) -> DecaySchedule {
        assert!(threshold > 1.0);
        self.rescale_threshold = threshold;
        self
    }

    /// The decay rate `g`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Current increment weight `g^ticks`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Number of ticks elapsed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Number of rescales performed so far.
    pub fn rescales(&self) -> u64 {
        self.rescales
    }

    /// Advance time by one event; subsequent increments weigh more.
    pub fn tick(&mut self) {
        self.ticks += 1;
        self.weight *= self.rate;
    }

    /// Advance time by `n` events at once (e.g. a weekly boundary in the
    /// box-office workload applies the decay factor once per week).
    pub fn tick_many(&mut self, n: u64) {
        self.ticks += n;
        // powi is exact enough and much faster than n multiplications.
        self.weight *= self.rate.powi(n.min(i32::MAX as u64) as i32);
    }

    /// Whether counters sharing this schedule must be rescaled now to
    /// avoid precision loss / overflow.
    pub fn needs_rescale(&self) -> bool {
        self.weight >= self.rescale_threshold
    }

    /// Consume the accumulated weight for a rescale: returns the factor by
    /// which all counters must be divided, and resets the weight to 1.
    pub fn take_rescale_factor(&mut self) -> f64 {
        let f = self.weight;
        self.weight = 1.0;
        self.rescales += 1;
        f
    }

    /// Normalize a raw (inflated) count into "equivalent fresh accesses".
    pub fn normalize(&self, raw: f64) -> f64 {
        raw / self.weight
    }
}

/// Track counts under several decay rates simultaneously (§2.3: "one can
/// simultaneously track counts with more than one decay term, switching to
/// the appropriate set as the request pattern warrants").
#[derive(Debug, Clone)]
pub struct MultiDecay {
    schedules: Vec<DecaySchedule>,
    active: usize,
}

impl MultiDecay {
    /// Build from a set of candidate rates; the first is active initially.
    ///
    /// # Panics
    /// If `rates` is empty.
    pub fn new(rates: &[f64]) -> MultiDecay {
        assert!(!rates.is_empty(), "need at least one decay rate");
        MultiDecay {
            schedules: rates.iter().map(|&r| DecaySchedule::new(r)).collect(),
            active: 0,
        }
    }

    /// All schedules (indexable by rate position).
    pub fn schedules(&self) -> &[DecaySchedule] {
        &self.schedules
    }

    /// Mutable access for ticking all schedules together.
    pub fn tick_all(&mut self) {
        for s in &mut self.schedules {
            s.tick();
        }
    }

    /// The currently active schedule.
    pub fn active(&self) -> &DecaySchedule {
        &self.schedules[self.active]
    }

    /// Index of the active schedule.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// Switch the active set (e.g. when the workload's drift rate changes).
    pub fn switch_to(&mut self, index: usize) {
        assert!(index < self.schedules.len());
        self.active = index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_decay_keeps_weight_one() {
        let mut s = DecaySchedule::none();
        for _ in 0..1000 {
            s.tick();
        }
        assert_eq!(s.weight(), 1.0);
        assert_eq!(s.ticks(), 1000);
        assert!(!s.needs_rescale());
    }

    #[test]
    fn weight_grows_geometrically() {
        let mut s = DecaySchedule::new(2.0);
        s.tick();
        s.tick();
        s.tick();
        assert_eq!(s.weight(), 8.0);
        assert_eq!(s.normalize(8.0), 1.0);
        assert_eq!(s.normalize(4.0), 0.5, "one-tick-old access worth 1/g");
    }

    #[test]
    fn tick_many_matches_repeated_tick() {
        let mut a = DecaySchedule::new(1.01);
        let mut b = DecaySchedule::new(1.01);
        for _ in 0..50 {
            a.tick();
        }
        b.tick_many(50);
        assert!((a.weight() - b.weight()).abs() / a.weight() < 1e-12);
    }

    #[test]
    fn rescale_cycle() {
        let mut s = DecaySchedule::new(10.0).with_rescale_threshold(1e6);
        let mut raw = 0.0; // one access per tick
        while !s.needs_rescale() {
            s.tick();
            raw += s.weight();
        }
        let before = s.normalize(raw);
        let f = s.take_rescale_factor();
        raw /= f;
        let after = s.normalize(raw);
        assert!(
            (before - after).abs() / before < 1e-9,
            "rescale preserves normalized value"
        );
        assert_eq!(s.rescales(), 1);
        assert_eq!(s.weight(), 1.0);
    }

    #[test]
    #[should_panic]
    fn sub_one_rate_rejected() {
        DecaySchedule::new(0.5);
    }

    #[test]
    fn multi_decay_switching() {
        let mut m = MultiDecay::new(&[1.0, 1.01, 2.0]);
        assert_eq!(m.active_index(), 0);
        for _ in 0..10 {
            m.tick_all();
        }
        assert_eq!(m.schedules()[0].weight(), 1.0);
        assert!(m.schedules()[2].weight() > 1000.0);
        m.switch_to(2);
        assert_eq!(m.active().rate(), 2.0);
    }

    #[test]
    #[should_panic]
    fn multi_decay_needs_rates() {
        MultiDecay::new(&[]);
    }
}
