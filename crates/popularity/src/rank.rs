//! Approximate order statistics over counts.
//!
//! The delay formula (paper Eq. 1) needs the *popularity rank* of a tuple.
//! Maintaining exact ranks under every count change costs `O(log n)` with a
//! balanced tree keyed by count — but counts are floats that all change
//! meaning under decay, so instead we bucket counts logarithmically
//! (resolution ≈ 1.6% per bucket) and keep a [`Fenwick`] tree of bucket
//! occupancies. Rank queries then cost `O(log B)` for `B` buckets and are
//! exact *across* buckets, tying only within a bucket — an error bounded by
//! the bucket's relative width, which is far below the workload noise the
//! scheme already tolerates (see the `ablation_rank` bench).

use crate::fenwick::Fenwick;

/// Buckets per natural-log unit: bucket width `e^(1/64)` ≈ 1.57%.
const RESOLUTION: f64 = 64.0;
/// Bucket index offset so tiny counts stay in range.
const OFFSET: i64 = 2048;
/// Total bucket count: covers counts from ~e^-32 to ~e^96 (≈ 1e41).
const NUM_BUCKETS: usize = 8192;

/// Map a raw count to its bucket.
pub fn bucket_of(count: f64) -> usize {
    if count <= 0.0 || count.is_nan() || !count.is_finite() {
        return 0;
    }
    let b = (count.ln() * RESOLUTION).floor() as i64 + OFFSET;
    b.clamp(0, NUM_BUCKETS as i64 - 1) as usize
}

/// Log-bucketed multiset of counts supporting approximate rank queries.
#[derive(Debug, Clone)]
pub struct RankIndex {
    buckets: Fenwick,
}

impl RankIndex {
    /// An empty index.
    pub fn new() -> RankIndex {
        RankIndex {
            buckets: Fenwick::new(NUM_BUCKETS),
        }
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.buckets.total() as usize
    }

    /// Whether no entries are tracked.
    pub fn is_empty(&self) -> bool {
        self.buckets.total() == 0
    }

    /// Track a new entry with the given count.
    pub fn insert(&mut self, count: f64) {
        self.buckets.add(bucket_of(count), 1);
    }

    /// Remove an entry that had the given count.
    pub fn remove(&mut self, count: f64) {
        self.buckets.sub(bucket_of(count), 1);
    }

    /// Move an entry from `old` to `new` count (no-op if same bucket).
    pub fn update(&mut self, old: f64, new: f64) {
        let (a, b) = (bucket_of(old), bucket_of(new));
        if a != b {
            self.buckets.sub(a, 1);
            self.buckets.add(b, 1);
        }
    }

    /// 1-based rank of an entry with this count: the number of entries in
    /// strictly greater buckets plus the number of entries tied in the same
    /// bucket (including the entry itself). Ties therefore share the
    /// *worst* rank of their bucket — the conservative choice for the
    /// defense, since Eq. 1 delays grow with rank and under-ranking a tied
    /// group would under-charge the adversary for every tuple in it. For a
    /// probe count whose bucket is empty, this is `1 +` the greater count.
    pub fn rank(&self, count: f64) -> usize {
        let b = bucket_of(count);
        let above = self.buckets.suffix_above(b) as usize;
        let same = self.buckets.bucket(b) as usize;
        above + same.max(1)
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.buckets.clear();
    }
}

impl Default for RankIndex {
    fn default() -> Self {
        RankIndex::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_monotone_in_count() {
        let mut last = 0;
        for e in -200..200 {
            let c = (e as f64 * 0.1).exp();
            let b = bucket_of(c);
            assert!(b >= last, "bucket must not decrease");
            last = b;
        }
    }

    #[test]
    fn bucket_handles_degenerate_inputs() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-1.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(f64::INFINITY), 0);
        assert_eq!(bucket_of(1e300), NUM_BUCKETS - 1);
    }

    #[test]
    fn rank_orders_distinct_magnitudes() {
        let mut r = RankIndex::new();
        r.insert(1.0);
        r.insert(10.0);
        r.insert(100.0);
        r.insert(1000.0);
        assert_eq!(r.rank(1000.0), 1);
        assert_eq!(r.rank(100.0), 2);
        assert_eq!(r.rank(10.0), 3);
        assert_eq!(r.rank(1.0), 4);
        // A hypothetical count between others slots correctly.
        assert_eq!(r.rank(50.0), 3);
        assert_eq!(r.rank(1e9), 1);
    }

    #[test]
    fn ties_share_worst_rank() {
        let mut r = RankIndex::new();
        for _ in 0..5 {
            r.insert(7.0);
        }
        r.insert(100.0);
        // One entry above, five tied: all five occupy the worst rank 6.
        assert_eq!(r.rank(7.0), 6);
        assert_eq!(r.rank(100.0), 1);
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn update_moves_entries() {
        let mut r = RankIndex::new();
        r.insert(1.0);
        r.insert(2.0);
        assert_eq!(r.rank(1.0), 2);
        r.update(1.0, 400.0);
        assert_eq!(r.rank(400.0), 1);
        assert_eq!(r.rank(2.0), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn remove_and_clear() {
        let mut r = RankIndex::new();
        r.insert(5.0);
        r.insert(6.0);
        r.remove(5.0);
        assert_eq!(r.len(), 1);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn rank_error_bounded_by_bucket_width() {
        // Counts differing by more than one bucket width (~1.6%) are always
        // ranked correctly relative to each other.
        let mut r = RankIndex::new();
        let mut counts = Vec::new();
        let mut c = 1.0;
        for _ in 0..100 {
            counts.push(c);
            r.insert(c);
            c *= 1.05; // > bucket width, so each lands in a distinct bucket
        }
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(r.rank(c), 100 - i);
        }
    }
}
