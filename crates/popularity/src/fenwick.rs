//! Fenwick tree (binary indexed tree) over bucket counts.
//!
//! Supports point add/remove and prefix/suffix sums in `O(log n)`; backs the
//! approximate order-statistics structure in [`crate::rank`].

/// A Fenwick tree holding non-negative integer counts per bucket.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u64>,
    len: usize,
    total: u64,
}

impl Fenwick {
    /// A tree with `len` buckets, all zero.
    pub fn new(len: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; len + 1],
            len,
            total: 0,
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has zero buckets.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all buckets.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Add `delta` to bucket `i` (0-based).
    pub fn add(&mut self, i: usize, delta: u64) {
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        let mut idx = i + 1;
        while idx <= self.len {
            self.tree[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
        self.total += delta;
    }

    /// Subtract `delta` from bucket `i`. Panics in debug builds if the
    /// bucket would go negative (callers must pair adds and removes).
    pub fn sub(&mut self, i: usize, delta: u64) {
        debug_assert!(self.bucket(i) >= delta, "bucket {i} underflow");
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        let mut idx = i + 1;
        while idx <= self.len {
            self.tree[idx] -= delta;
            idx += idx & idx.wrapping_neg();
        }
        self.total -= delta;
    }

    /// Sum of buckets `0..=i`.
    pub fn prefix(&self, i: usize) -> u64 {
        let mut idx = (i + 1).min(self.len);
        let mut sum = 0;
        while idx > 0 {
            sum += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }

    /// Sum of buckets strictly greater than `i`.
    pub fn suffix_above(&self, i: usize) -> u64 {
        self.total - self.prefix(i)
    }

    /// Value of a single bucket.
    pub fn bucket(&self, i: usize) -> u64 {
        let lo = if i == 0 { 0 } else { self.prefix(i - 1) };
        self.prefix(i) - lo
    }

    /// Reset all buckets to zero, keeping capacity.
    pub fn clear(&mut self) {
        self.tree.iter_mut().for_each(|v| *v = 0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_prefix() {
        let mut f = Fenwick::new(10);
        f.add(0, 1);
        f.add(3, 2);
        f.add(9, 5);
        assert_eq!(f.prefix(0), 1);
        assert_eq!(f.prefix(2), 1);
        assert_eq!(f.prefix(3), 3);
        assert_eq!(f.prefix(9), 8);
        assert_eq!(f.total(), 8);
    }

    #[test]
    fn suffix_above() {
        let mut f = Fenwick::new(8);
        for i in 0..8 {
            f.add(i, 1);
        }
        assert_eq!(f.suffix_above(3), 4);
        assert_eq!(f.suffix_above(7), 0);
        assert_eq!(f.suffix_above(0), 7);
    }

    #[test]
    fn sub_and_bucket() {
        let mut f = Fenwick::new(4);
        f.add(2, 3);
        f.sub(2, 1);
        assert_eq!(f.bucket(2), 2);
        assert_eq!(f.bucket(1), 0);
        assert_eq!(f.total(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut f = Fenwick::new(4);
        f.add(1, 7);
        f.clear();
        assert_eq!(f.total(), 0);
        assert_eq!(f.prefix(3), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut f = Fenwick::new(4);
        f.add(4, 1);
    }

    #[test]
    fn matches_naive_model() {
        // Deterministic pseudo-random sequence of adds/subs, cross-checked
        // against a plain vector.
        let mut f = Fenwick::new(64);
        let mut model = vec![0u64; 64];
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % 64) as usize;
            if x & 1 == 0 || model[i] == 0 {
                f.add(i, 1);
                model[i] += 1;
            } else {
                f.sub(i, 1);
                model[i] -= 1;
            }
        }
        for i in 0..64 {
            let want: u64 = model[..=i].iter().sum();
            assert_eq!(f.prefix(i), want, "prefix({i})");
            assert_eq!(f.bucket(i), model[i], "bucket({i})");
        }
        assert_eq!(f.total(), model.iter().sum::<u64>());
    }
}
