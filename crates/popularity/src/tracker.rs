//! Per-key frequency tracking with decay, normalization, and ranks.
//!
//! [`FrequencyTracker`] implements the paper's count scheme (§2.3): each
//! tuple carries a count of the times it was requested; the count,
//! normalized by a global count of all requests, indicates popularity.
//! Decay is handled by the inflated-increment technique in
//! [`crate::decay`], and popularity *ranks* (needed by delay Eq. 1) come
//! from the log-bucketed order statistics in [`crate::rank`].
//!
//! The same structure tracks update rates for the §3 update-rate scheme —
//! "frequency" is just events per key.

use crate::decay::DecaySchedule;
use crate::rank::RankIndex;
use std::collections::HashMap;

/// Tracks decayed event frequencies per `u64` key (RowIds, object ids).
#[derive(Debug, Clone)]
pub struct FrequencyTracker {
    counts: HashMap<u64, f64>,
    schedule: DecaySchedule,
    rank: RankIndex,
    /// Sum of all raw (inflated) counts.
    total_raw: f64,
    /// Largest raw count over all keys (raw counts only grow between
    /// rescales, so a running max is exact).
    max_raw: f64,
    /// Total events ever recorded.
    events: u64,
}

impl FrequencyTracker {
    /// A tracker with the given decay schedule.
    pub fn new(schedule: DecaySchedule) -> FrequencyTracker {
        FrequencyTracker {
            counts: HashMap::new(),
            schedule,
            rank: RankIndex::new(),
            total_raw: 0.0,
            max_raw: 0.0,
            events: 0,
        }
    }

    /// A tracker that never decays (static distributions, paper Table 3's
    /// `decay = 1.0` row).
    pub fn no_decay() -> FrequencyTracker {
        FrequencyTracker::new(DecaySchedule::none())
    }

    /// The decay schedule in use.
    pub fn schedule(&self) -> &DecaySchedule {
        &self.schedule
    }

    /// Record one event for `key`, advancing decay time by one event
    /// ("the decay is applied at each request", §2.3).
    pub fn record(&mut self, key: u64) {
        self.record_weighted(key, 1.0);
    }

    /// Record an event *without* advancing decay time. Used by workloads
    /// that apply decay only at period boundaries (the paper's box-office
    /// experiment applies "decay factors at weekly boundaries", §4.2) via
    /// [`FrequencyTracker::tick_boundary`].
    pub fn record_static(&mut self, key: u64) {
        self.apply(key, self.schedule.weight());
        if self.schedule.needs_rescale() {
            self.rescale();
        }
    }

    /// Record `units` worth of events *without* advancing decay time: the
    /// weighted form of [`FrequencyTracker::record_static`]. This is the
    /// natural sink for write-behind deltas ([`crate::writebehind`]):
    /// a flushed batch of coalesced counts lands at the current weight,
    /// and decay advances only through explicit boundaries or live
    /// `record` calls.
    pub fn record_static_weighted(&mut self, key: u64, units: f64) {
        self.apply(key, self.schedule.weight() * units);
        self.events += extra_events(units);
        if self.schedule.needs_rescale() {
            self.rescale();
        }
    }

    /// Record an event worth `units` fresh accesses (e.g. a weekly sales
    /// figure recorded in one shot).
    pub fn record_weighted(&mut self, key: u64, units: f64) {
        self.schedule.tick();
        let w = self.schedule.weight() * units;
        self.apply(key, w);
        self.events += extra_events(units);
        if self.schedule.needs_rescale() {
            self.rescale();
        }
    }

    /// Add a raw (already inflated) increment to a key's counter.
    ///
    /// Bumps `events` by one; weighted entry points add the remaining
    /// `units - 1` themselves via [`extra_events`], so a record worth
    /// `units` accesses counts as `units` requests in the undecayed
    /// global total that [`FrequencyTracker::fmax_global`] divides by.
    /// Without that, bulk-seeded counts (write-behind flushes,
    /// warm-started popularity) would dwarf the request count and push
    /// the "relative" frequency far above 1.
    fn apply(&mut self, key: u64, w: f64) {
        use std::collections::hash_map::Entry;
        let new = match self.counts.entry(key) {
            Entry::Occupied(mut e) => {
                // Already rank-indexed (possibly at count 0 via
                // `ensure_tracked`): move, don't re-insert.
                let old = *e.get();
                *e.get_mut() += w;
                let new = *e.get();
                self.rank.update(old, new);
                new
            }
            Entry::Vacant(e) => {
                e.insert(w);
                self.rank.insert(w);
                w
            }
        };
        self.total_raw += w;
        if new > self.max_raw {
            self.max_raw = new;
        }
        self.events += 1;
    }

    /// Advance decay time without recording an event (used by workloads
    /// that apply decay at period boundaries, like the weekly box-office
    /// trace, Table 4).
    pub fn tick_boundary(&mut self) {
        self.schedule.tick();
        if self.schedule.needs_rescale() {
            self.rescale();
        }
    }

    /// Pre-register a key with zero count so it participates in ranks
    /// ("we assume all items are equally unpopular with frequencies of
    /// zero", §2.3). Zero-count keys rank below every key with events.
    pub fn ensure_tracked(&mut self, key: u64) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.counts.entry(key) {
            e.insert(0.0);
            self.rank.insert(0.0);
        }
    }

    /// Whether `key` has ever been seen (recorded or pre-registered).
    pub fn contains(&self, key: u64) -> bool {
        self.counts.contains_key(&key)
    }

    /// Number of distinct keys tracked (including zero-count keys).
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Decay-normalized count for `key`, in units of "equivalent fresh
    /// accesses". Unknown keys count as zero.
    pub fn count(&self, key: u64) -> f64 {
        self.schedule
            .normalize(self.counts.get(&key).copied().unwrap_or(0.0))
    }

    /// Decay-normalized total of all counts.
    pub fn total(&self) -> f64 {
        self.schedule.normalize(self.total_raw)
    }

    /// Relative frequency of `key`: its count over the total count.
    /// Zero when nothing has been recorded.
    pub fn frequency(&self, key: u64) -> f64 {
        if self.total_raw <= 0.0 {
            return 0.0;
        }
        self.counts.get(&key).copied().unwrap_or(0.0) / self.total_raw
    }

    /// Frequency of the most popular key (`f_max` in delay Eq. 1).
    pub fn fmax(&self) -> f64 {
        if self.total_raw <= 0.0 {
            return 0.0;
        }
        self.max_raw / self.total_raw
    }

    /// Largest decay-normalized count.
    pub fn max_count(&self) -> f64 {
        self.schedule.normalize(self.max_raw)
    }

    /// The paper's §2.3 popularity normalization: the (decayed) maximum
    /// count over "a global count of all requests" — the *undecayed*
    /// event total. Identical to [`FrequencyTracker::fmax`] without decay;
    /// under decay it shrinks as history is forgotten, which is what makes
    /// every delay grow with the decay rate in the paper's Tables 3–4.
    pub fn fmax_global(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.max_count() / self.events as f64
    }

    /// Approximate 1-based popularity rank of `key` among tracked keys
    /// (1 = most popular). Keys never seen rank after every tracked key.
    pub fn rank(&self, key: u64) -> usize {
        match self.counts.get(&key) {
            Some(&raw) => self.rank.rank(raw),
            None => self.tracked() + 1,
        }
    }

    /// Exact 1-based rank by linear scan (`O(n)`), with the same
    /// worst-rank tie semantics as [`FrequencyTracker::rank`]; reference
    /// for tests and the rank ablation bench.
    pub fn exact_rank(&self, key: u64) -> usize {
        let Some(&mine) = self.counts.get(&key) else {
            return self.tracked() + 1;
        };
        let greater = self.counts.values().filter(|&&c| c > mine).count();
        let tied = self.counts.values().filter(|&&c| c == mine).count();
        greater + tied.max(1)
    }

    /// Iterate `(key, approximate 1-based rank)` pairs for every tracked
    /// key, in arbitrary order. Each rank is exactly what
    /// [`FrequencyTracker::rank`] would return for that key right now, so
    /// a frozen tracker can be flattened into a rank table once and
    /// probed without touching the hash map again (the snapshot pricing
    /// fast path).
    pub fn rank_table(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.counts
            .iter()
            .map(|(&k, &raw)| (k, self.rank.rank(raw)))
    }

    /// Iterate `(key, decay-normalized count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.counts
            .iter()
            .map(|(&k, &raw)| (k, self.schedule.normalize(raw)))
    }

    /// Snapshot the tracker as `(key, decay-normalized count)` pairs
    /// sorted by key: the deterministic wire form replication ships.
    /// Normalized counts are the decay-invariant representation — the
    /// receiver folds them back in at *its* current weight via
    /// [`FrequencyTracker::record_static_weighted`], so two trackers at
    /// different points in their inflated-increment/rescale cycles
    /// exchange state without either's arithmetic leaking into the other.
    pub fn export_counts(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self.iter().collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Divide every stored quantity by the accumulated inflation factor and
    /// rebuild the rank index. Called automatically when the schedule
    /// signals overflow risk.
    fn rescale(&mut self) {
        let f = self.schedule.take_rescale_factor();
        debug_assert!(f > 1.0);
        self.rank.clear();
        for v in self.counts.values_mut() {
            *v /= f;
            self.rank.insert(*v);
        }
        self.total_raw /= f;
        self.max_raw /= f;
    }
}

/// Requests beyond the one [`FrequencyTracker::apply`] already counted
/// for a record worth `units` accesses. Fractional units (coalesced
/// write-behind deltas) round to the nearest whole request; anything
/// below 1 adds nothing extra.
fn extra_events(units: f64) -> u64 {
    (units.round() as u64).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_frequencies_no_decay() {
        let mut t = FrequencyTracker::no_decay();
        for _ in 0..30 {
            t.record(1);
        }
        for _ in 0..10 {
            t.record(2);
        }
        assert_eq!(t.count(1), 30.0);
        assert_eq!(t.count(2), 10.0);
        assert_eq!(t.count(99), 0.0);
        assert_eq!(t.total(), 40.0);
        assert!((t.frequency(1) - 0.75).abs() < 1e-12);
        assert!((t.fmax() - 0.75).abs() < 1e-12);
        assert_eq!(t.events(), 40);
        assert_eq!(t.tracked(), 2);
    }

    #[test]
    fn ranks_follow_counts() {
        let mut t = FrequencyTracker::no_decay();
        for key in 0..10u64 {
            // Key k gets 2^k accesses: unambiguous ranking.
            for _ in 0..(1u64 << key) {
                t.record(key);
            }
        }
        for key in 0..10u64 {
            assert_eq!(t.rank(key), (10 - key) as usize, "key {key}");
            assert_eq!(t.exact_rank(key), (10 - key) as usize);
        }
        assert_eq!(t.rank(777), 11, "unseen key ranks last");
    }

    #[test]
    fn zero_count_keys_rank_last() {
        let mut t = FrequencyTracker::no_decay();
        t.record(1);
        t.ensure_tracked(2);
        t.ensure_tracked(2); // idempotent
        t.ensure_tracked(3);
        assert_eq!(t.tracked(), 3);
        assert!(t.contains(2));
        assert!(!t.contains(9));
        assert_eq!(t.rank(1), 1);
        // Both zero-count keys tie at the worst rank.
        assert_eq!(t.rank(2), 3);
        assert_eq!(t.rank(3), 3);
        assert_eq!(t.exact_rank(2), 3);
        assert_eq!(t.frequency(2), 0.0);
    }

    #[test]
    fn decay_forgets_the_past() {
        // With strong decay, a key hammered long ago loses to a key
        // accessed recently.
        let mut t = FrequencyTracker::new(DecaySchedule::new(1.1));
        for _ in 0..100 {
            t.record(1);
        }
        for _ in 0..20 {
            t.record(2);
        }
        assert!(
            t.count(2) > t.count(1),
            "recent key should dominate: {} vs {}",
            t.count(2),
            t.count(1)
        );
        assert_eq!(t.rank(2), 1);
    }

    #[test]
    fn no_decay_is_order_insensitive() {
        let mut a = FrequencyTracker::no_decay();
        let mut b = FrequencyTracker::no_decay();
        for _ in 0..50 {
            a.record(1);
        }
        for _ in 0..50 {
            a.record(2);
        }
        for _ in 0..50 {
            b.record(2);
        }
        for _ in 0..50 {
            b.record(1);
        }
        assert_eq!(a.count(1), b.count(1));
        assert_eq!(a.frequency(2), b.frequency(2));
    }

    #[test]
    fn rescale_preserves_normalized_state() {
        let mut t = FrequencyTracker::new(DecaySchedule::new(1.5).with_rescale_threshold(1e6));
        for i in 0..100 {
            t.record(i % 7);
        }
        assert!(t.schedule().rescales() > 0, "rescale should have fired");
        // Normalized counts remain sane and ranks consistent with counts.
        let mut pairs: Vec<(u64, f64)> = t.iter().collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
        assert_eq!(t.rank(pairs[0].0), 1);
        let total: f64 = pairs.iter().map(|(_, c)| c).sum();
        assert!((total - t.total()).abs() / total < 1e-9);
    }

    #[test]
    fn ensure_tracked_then_record_does_not_duplicate_rank_entries() {
        // Regression: pre-registering a key and then recording it must
        // move its single rank entry, not add a second one.
        let mut t = FrequencyTracker::no_decay();
        for k in 0..100u64 {
            t.ensure_tracked(k);
        }
        for _ in 0..10 {
            t.record(0);
        }
        t.record(1);
        assert_eq!(t.tracked(), 100);
        assert_eq!(t.rank(0), 1);
        assert_eq!(t.rank(1), 2);
        // All 98 zero-count keys tie at the worst rank, exactly 100.
        assert_eq!(t.rank(50), 100);
        assert_eq!(t.exact_rank(50), 100);
    }

    #[test]
    fn record_static_does_not_decay() {
        let mut t = FrequencyTracker::new(DecaySchedule::new(2.0));
        t.record_static(1);
        t.record_static(1);
        assert_eq!(t.count(1), 2.0, "no inflation without ticks");
        t.tick_boundary();
        assert_eq!(t.count(1), 1.0, "boundary halves effective count");
        t.record_static(2);
        assert_eq!(t.count(2), 1.0, "new events worth 1 at current weight");
    }

    #[test]
    fn weighted_records() {
        let mut t = FrequencyTracker::no_decay();
        t.record_weighted(1, 100.0);
        t.record(2);
        assert_eq!(t.count(1), 100.0);
        assert!((t.frequency(1) - 100.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_ticks_decay_without_events() {
        let mut t = FrequencyTracker::new(DecaySchedule::new(2.0));
        t.record(1);
        let before = t.count(1);
        t.tick_boundary();
        let after = t.count(1);
        assert!((after - before / 2.0).abs() < 1e-12);
        assert_eq!(t.events(), 1);
    }

    #[test]
    fn export_fold_roundtrip_is_decay_invariant() {
        // A tracker deep into its inflation cycle (rescales included)
        // exports normalized counts; folding them into a fresh tracker
        // reproduces counts, frequencies and ranks.
        let mut src = FrequencyTracker::new(DecaySchedule::new(1.5).with_rescale_threshold(1e6));
        for i in 0..200u64 {
            src.record(i % 11);
        }
        assert!(src.schedule().rescales() > 0);
        let exported = src.export_counts();
        let mut dst = FrequencyTracker::new(DecaySchedule::new(1.5).with_rescale_threshold(1e6));
        // Put the receiver at a different point in its own cycle first.
        for _ in 0..17 {
            dst.tick_boundary();
        }
        for &(k, units) in &exported {
            dst.record_static_weighted(k, units);
        }
        for k in 0..11u64 {
            let a = src.count(k);
            let b = dst.count(k);
            assert!(
                (a - b).abs() <= a.abs() * 1e-9,
                "key {k}: {a} vs {b} despite normalization"
            );
            assert_eq!(src.rank(k), dst.rank(k), "key {k}");
        }
        assert!((src.fmax() - dst.fmax()).abs() < 1e-12);
    }

    #[test]
    fn export_counts_is_sorted_and_complete() {
        let mut t = FrequencyTracker::no_decay();
        t.record(9);
        t.record(3);
        t.ensure_tracked(7);
        let e = t.export_counts();
        assert_eq!(e, vec![(3, 1.0), (7, 0.0), (9, 1.0)]);
    }

    #[test]
    fn rank_table_matches_rank_per_key() {
        let mut t = FrequencyTracker::new(DecaySchedule::new(1.2));
        for i in 0..500u64 {
            t.record(i % 23);
        }
        t.ensure_tracked(1000);
        let table: Vec<(u64, usize)> = t.rank_table().collect();
        assert_eq!(table.len(), t.tracked());
        for (key, rank) in table {
            assert_eq!(rank, t.rank(key), "key {key}");
        }
    }

    #[test]
    fn approx_rank_tracks_exact_rank_closely() {
        // Zipf-ish synthetic counts; approximate rank must stay within the
        // tie-width of exact rank.
        let mut t = FrequencyTracker::no_decay();
        let mut x: u64 = 12345;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Skewed key choice: low keys much more likely.
            let key = (x % 64).min(x % 17).min(x % 5);
            t.record(key);
        }
        for key in 0..20u64 {
            let a = t.rank(key);
            let e = t.exact_rank(key);
            // Ranks agree up to ties within one log-bucket.
            assert!(
                (a as i64 - e as i64).abs() <= 3,
                "key {key}: approx {a} vs exact {e}"
            );
        }
    }
}
