//! Synchronization facade: the one place this crate names its atomics.
//!
//! Lock-free code in this crate ([`crate::shardqueue`]) imports its
//! atomic types and thread-identity helpers from here instead of from
//! `std::sync` directly, so the *same source* can be driven two ways:
//!
//! * **normally** — the re-exports resolve to `std::sync::atomic` and the
//!   hot path compiles to exactly the instructions it always did;
//! * **under the model checker** — building with the `model` cargo
//!   feature **and** `RUSTFLAGS="--cfg delayguard_model"` resolves them
//!   to `loom_lite::sync`, whose every operation is a deterministic
//!   schedule point, letting `tests/model.rs` exhaustively explore thread
//!   interleavings (see `vendor/loom_lite`).
//!
//! Both switches are required on purpose: the cargo feature pulls in the
//! vendored checker, the cfg keeps accidental `--all-features` builds
//! from silently de-optimizing the production atomics.

#[cfg(all(feature = "model", delayguard_model))]
pub use loom_lite::sync::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(all(feature = "model", delayguard_model)))]
pub use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// A small per-thread integer used to stripe threads across shards.
///
/// Under the model this is the model-thread index (0 for the test
/// closure, then spawn order) — deterministic per schedule, which is what
/// makes shard assignment, and therefore the whole execution, replayable.
#[cfg(all(feature = "model", delayguard_model))]
pub fn thread_index() -> usize {
    loom_lite::thread::index()
}

/// A small per-thread integer used to stripe threads across shards,
/// assigned round-robin the first time each OS thread asks.
#[cfg(not(all(feature = "model", delayguard_model)))]
pub fn thread_index() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    INDEX.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}
