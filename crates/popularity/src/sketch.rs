//! Count–min sketch: a memory-bounded approximate counter.
//!
//! The paper cites Gibbons-style sampling synopses [14] as a way to keep
//! count-maintenance overheads low. A count–min sketch serves the same
//! role with hard memory bounds and one-sided error: estimated counts are
//! never *under* the true count, so delays derived from sketch counts are
//! never *longer* than deserved for popular items — the failure mode that
//! would hurt legitimate users.

/// A count–min sketch over `u64` keys with `f64` cells (so inflated decayed
/// increments work unchanged).
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    cells: Vec<f64>,
    seeds: Vec<u64>,
    total: f64,
}

impl CountMinSketch {
    /// A sketch with the given `width` (counters per row) and `depth`
    /// (independent rows). Error ≈ `2·total/width` with probability
    /// `1 - 2^-depth`.
    ///
    /// # Panics
    /// If width or depth is zero.
    pub fn new(width: usize, depth: usize) -> CountMinSketch {
        assert!(width > 0 && depth > 0, "sketch dimensions must be positive");
        // Fixed, distinct seeds: deterministic across runs.
        let seeds = (0..depth)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1) ^ 0xD1B5_4A32_D192_ED03)
            .collect();
        CountMinSketch {
            width,
            depth,
            cells: vec![0.0; width * depth],
            seeds,
            total: 0.0,
        }
    }

    /// Sketch sized for a target relative error `eps` and failure
    /// probability `delta` (standard CM sizing: `w = ⌈e/eps⌉`,
    /// `d = ⌈ln(1/delta)⌉`).
    pub fn with_error(eps: f64, delta: f64) -> CountMinSketch {
        assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
        let width = (std::f64::consts::E / eps).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth)
    }

    fn cell_index(&self, row: usize, key: u64) -> usize {
        // SplitMix64-style mixing with a per-row seed.
        let mut z = key ^ self.seeds[row];
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        row * self.width + (z % self.width as u64) as usize
    }

    /// Add `units` to `key`'s estimate.
    pub fn add(&mut self, key: u64, units: f64) {
        for row in 0..self.depth {
            let idx = self.cell_index(row, key);
            self.cells[idx] += units;
        }
        self.total += units;
    }

    /// Point estimate for `key` (never less than the true count).
    pub fn estimate(&self, key: u64) -> f64 {
        (0..self.depth)
            .map(|row| self.cells[self.cell_index(row, key)])
            .fold(f64::INFINITY, f64::min)
    }

    /// Sum of all additions.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Divide every cell by `factor` (decay rescaling).
    pub fn rescale(&mut self, factor: f64) {
        assert!(factor > 0.0);
        for c in &mut self.cells {
            *c /= factor;
        }
        self.total /= factor;
    }

    /// Memory footprint in bytes (cells only).
    pub fn memory_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut s = CountMinSketch::new(64, 4);
        let mut truth = std::collections::HashMap::new();
        let mut x: u64 = 99;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 500;
            s.add(key, 1.0);
            *truth.entry(key).or_insert(0.0) += 1.0;
        }
        for (&key, &count) in &truth {
            assert!(
                s.estimate(key) >= count,
                "key {key}: estimate {} < true {count}",
                s.estimate(key)
            );
        }
    }

    #[test]
    fn exact_when_sparse() {
        let mut s = CountMinSketch::new(1024, 4);
        s.add(1, 3.0);
        s.add(2, 7.0);
        assert_eq!(s.estimate(1), 3.0);
        assert_eq!(s.estimate(2), 7.0);
        assert_eq!(s.estimate(3), 0.0);
        assert_eq!(s.total(), 10.0);
    }

    #[test]
    fn error_bound_holds_on_heavy_hitters() {
        let mut s = CountMinSketch::with_error(0.01, 0.01);
        // One heavy key among uniform noise.
        for _ in 0..10_000 {
            s.add(42, 1.0);
        }
        for k in 0..10_000u64 {
            s.add(k + 100, 1.0);
        }
        let est = s.estimate(42);
        let bound = 10_000.0 + 0.01 * s.total() * 2.0;
        assert!(est >= 10_000.0);
        assert!(est <= bound, "estimate {est} above bound {bound}");
    }

    #[test]
    fn rescale_divides() {
        let mut s = CountMinSketch::new(16, 2);
        s.add(5, 8.0);
        s.rescale(4.0);
        assert_eq!(s.estimate(5), 2.0);
        assert_eq!(s.total(), 2.0);
    }

    #[test]
    fn sizing_from_error() {
        let s = CountMinSketch::with_error(0.001, 0.01);
        assert!(s.width >= 2718);
        assert!(s.depth >= 4);
        assert!(s.memory_bytes() >= s.width * s.depth * 8);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        CountMinSketch::new(0, 1);
    }
}
