//! Adaptive decay-rate selection (paper §2.3).
//!
//! "In situations where [the right decay term] is not known, one can
//! simultaneously track counts with more than one decay term, switching
//! to the appropriate set as the request pattern warrants — a technique
//! used previously in both wireless networking [16] and energy
//! management [10]. This adaptive strategy has the added benefit of
//! tracking distributions with non-stationary second-order terms."
//!
//! [`AdaptiveTracker`] maintains one [`FrequencyTracker`] per candidate
//! decay rate and scores each by its one-step-ahead predictive likelihood:
//! before recording a request, each candidate's current frequency estimate
//! for the requested key is treated as the probability it assigned to that
//! request; the running (exponentially smoothed) log-score picks the
//! active candidate. Stationary workloads reward slow decay (long
//! histories), drifting workloads reward fast decay (recency).

use crate::decay::DecaySchedule;
use crate::tracker::FrequencyTracker;

/// A set of concurrently-maintained trackers with different decay rates,
/// one of which is *active* at any time.
#[derive(Debug, Clone)]
pub struct AdaptiveTracker {
    trackers: Vec<FrequencyTracker>,
    rates: Vec<f64>,
    /// Exponentially smoothed predictive log-scores, one per candidate.
    scores: Vec<f64>,
    /// Smoothing factor for the score EMA.
    score_smoothing: f64,
    active: usize,
    events: u64,
    /// Re-evaluate the active candidate every this many events.
    switch_period: u64,
    switches: u64,
}

impl AdaptiveTracker {
    /// Track with the given candidate decay rates (must be non-empty;
    /// rates ≥ 1.0). The first candidate starts active.
    pub fn new(rates: &[f64]) -> AdaptiveTracker {
        assert!(!rates.is_empty(), "need at least one candidate rate");
        AdaptiveTracker {
            trackers: rates
                .iter()
                .map(|&r| FrequencyTracker::new(DecaySchedule::new(r)))
                .collect(),
            rates: rates.to_vec(),
            scores: vec![0.0; rates.len()],
            score_smoothing: 0.995,
            active: 0,
            events: 0,
            switch_period: 256,
            switches: 0,
        }
    }

    /// Change how often the active candidate is re-evaluated.
    pub fn with_switch_period(mut self, period: u64) -> AdaptiveTracker {
        assert!(period > 0);
        self.switch_period = period;
        self
    }

    /// The candidate rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Index of the active candidate.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// The active candidate's decay rate.
    pub fn active_rate(&self) -> f64 {
        self.rates[self.active]
    }

    /// The active tracker (used for ranks, frequencies, delays).
    pub fn active(&self) -> &FrequencyTracker {
        &self.trackers[self.active]
    }

    /// How many times the active candidate changed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Pre-register a key in every candidate.
    pub fn ensure_tracked(&mut self, key: u64) {
        for t in &mut self.trackers {
            t.ensure_tracked(key);
        }
    }

    /// Record a request: score every candidate's prediction, feed the
    /// request to all of them, and periodically adopt the best scorer.
    pub fn record(&mut self, key: u64) {
        // Score first: predict-then-update keeps scoring honest.
        for (i, t) in self.trackers.iter().enumerate() {
            // Laplace-style floor keeps log finite for unseen keys.
            let p = t.frequency(key).max(1e-9);
            self.scores[i] =
                self.score_smoothing * self.scores[i] + (1.0 - self.score_smoothing) * p.ln();
        }
        for t in &mut self.trackers {
            t.record(key);
        }
        self.events += 1;
        if self.events.is_multiple_of(self.switch_period) {
            let best = self
                .scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty");
            if best != self.active {
                self.active = best;
                self.switches += 1;
            }
        }
    }

    /// Current smoothed predictive log-scores (diagnostics).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for the tests (workload crate is not a
    /// dependency of this crate).
    struct X(u64);
    impl X {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn stationary_workload_prefers_slow_decay() {
        let mut at = AdaptiveTracker::new(&[1.0, 1.05]).with_switch_period(64);
        let mut x = X(42);
        // Fixed skewed preferences over 16 keys, forever.
        for _ in 0..20_000 {
            let r = x.next();
            let key = (r % 16).min(r % 7).min(r % 3);
            at.record(key);
        }
        assert_eq!(
            at.active_rate(),
            1.0,
            "stationary data: the long-memory candidate should win (scores {:?})",
            at.scores()
        );
    }

    #[test]
    fn drifting_workload_prefers_fast_decay() {
        let mut at = AdaptiveTracker::new(&[1.0, 1.05]).with_switch_period(64);
        let mut x = X(7);
        // The popular block of keys shifts every 500 requests: stale
        // history is actively misleading.
        for epoch in 0..40u64 {
            let base = epoch * 100;
            for _ in 0..500 {
                let r = x.next();
                let key = base + (r % 16).min(r % 7).min(r % 3);
                at.record(key);
            }
        }
        assert_eq!(
            at.active_rate(),
            1.05,
            "drifting data: the fast-decay candidate should win (scores {:?})",
            at.scores()
        );
        assert!(at.switches() >= 1);
    }

    #[test]
    fn active_tracker_serves_ranks() {
        let mut at = AdaptiveTracker::new(&[1.0, 1.01]);
        at.ensure_tracked(99);
        for _ in 0..100 {
            at.record(1);
        }
        at.record(2);
        assert_eq!(at.active().rank(1), 1);
        assert!(at.active().rank(99) > 2);
        assert_eq!(at.events(), 101);
    }

    #[test]
    #[should_panic]
    fn empty_candidates_rejected() {
        AdaptiveTracker::new(&[]);
    }
}
