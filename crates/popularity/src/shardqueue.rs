//! Lock-free sharded event queue for write-behind access recording.
//!
//! The paper's §4.4 write-behind cache ([`crate::writebehind`]) keeps read
//! queries from becoming read-modify-write storms on a *single-threaded*
//! server. Under concurrency the same idea needs a concurrent front end:
//! every query thread must be able to record "tuple `k` was accessed" with
//! no locks on the hot path, while a single background drainer folds those
//! events into the authoritative [`crate::FrequencyTracker`]s.
//!
//! [`ShardedEventQueue`] provides exactly that:
//!
//! * producers push onto one of `S` Treiber stacks (a compare-and-swap
//!   loop on an `AtomicPtr` head — lock-free, no waiting producers ever
//!   block each other across shards, and contention *within* a shard is a
//!   single CAS retry);
//! * every event is stamped with a global sequence number from one
//!   `AtomicU64`, so the drainer can merge the per-shard stacks back into
//!   one totally ordered batch. When the producers are a single thread,
//!   that order is exactly the push order — which is what lets the
//!   snapshot path reproduce the sequential path's decay arithmetic
//!   bit-for-bit (the inflated-increment scheme is order-sensitive);
//! * the drainer (`drain`) atomically severs each shard's stack with one
//!   `swap`, so no event is ever lost or observed twice, no matter how
//!   drains race with pushes.
//!
//! Shard choice is per-thread (a thread-local stripe id), so a thread's
//! own events never contend with its previous push, and threads spread
//! across shards round-robin.
//!
//! All atomics are imported through the [`crate::sync`] facade, so the
//! exact code below is also explored exhaustively by the deterministic
//! model checker (`tests/model.rs`, built with `--features model` and
//! `RUSTFLAGS="--cfg delayguard_model"`): lost events, duplicated events,
//! and drain-order violations are checked on every interleaving up to the
//! preemption bound, not just the ones an 8-thread stress run happens to
//! hit.

use std::ptr;

use crate::sync::{thread_index, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

struct Node<T> {
    next: *mut Node<T>,
    seq: u64,
    item: T,
}

/// A lock-free multi-producer queue sharded into Treiber stacks, drained
/// in global sequence order by a single (or occasional) consumer.
#[derive(Debug)]
pub struct ShardedEventQueue<T> {
    shards: Box<[AtomicPtr<Node<T>>]>,
    seq: AtomicU64,
    pending: AtomicUsize,
    /// Advisory lower bound on every undrained sequence number, updated
    /// after each drain. Only used as the base point for wrap-aware
    /// ordering in [`ShardedEventQueue::drain`]; any recent value works,
    /// so plain loads/stores suffice.
    watermark: AtomicU64,
}

// SAFETY: the queue hands items across threads; that is its whole
// purpose. The raw `Node` pointers are only ever owned by one side at a
// time — a producer owns a node until its CAS publishes it, the drainer
// owns a whole chain once its `swap` severs it — so sending the queue (or
// references to it) between threads never aliases mutable node state.
// `T: Send` is required because items cross threads; no `T: Sync` is
// needed because no two threads ever share a reference to the same item.
unsafe impl<T: Send> Send for ShardedEventQueue<T> {}
// SAFETY: as above — all shared-state mutation goes through atomics, and
// node ownership transfers are mediated by the CAS/swap protocol.
unsafe impl<T: Send> Sync for ShardedEventQueue<T> {}

/// Per-thread shard stripe: round-robin over OS threads normally, the
/// deterministic model-thread index under the model checker.
fn thread_stripe() -> usize {
    thread_index()
}

impl<T> ShardedEventQueue<T> {
    /// A queue with `shards` stacks (rounded up to a power of two, at
    /// least 1).
    pub fn new(shards: usize) -> ShardedEventQueue<T> {
        ShardedEventQueue::with_initial_seq(shards, 0)
    }

    /// A queue whose global sequence counter starts at `first_seq`.
    ///
    /// Drain order is correct across `u64` wraparound (sequence numbers
    /// are compared by wrapping distance from the drain watermark, not by
    /// raw value), and this constructor exists so tests can actually
    /// exercise that boundary without pushing 2⁶⁴ events first.
    pub fn with_initial_seq(shards: usize, first_seq: u64) -> ShardedEventQueue<T> {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedEventQueue {
            shards,
            seq: AtomicU64::new(first_seq),
            pending: AtomicUsize::new(0),
            watermark: AtomicU64::new(first_seq),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Events pushed but not yet drained. Monotone between a push and the
    /// drain that consumes it; exact when quiescent.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Push one event, returning its global sequence number. Lock-free:
    /// a CAS loop on the owning shard's head pointer.
    pub fn push(&self, item: T) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[thread_stripe() & (self.shards.len() - 1)];
        // Count before publishing: a drain that pops this node must see
        // the increment (the Release CAS orders it), so `pending` can
        // over-count transiently but never underflow.
        self.pending.fetch_add(1, Ordering::Relaxed);
        let node = Box::into_raw(Box::new(Node {
            next: ptr::null_mut(),
            seq,
            item,
        }));
        let mut head = shard.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` came from `Box::into_raw` above and is
            // exclusively ours until the CAS below publishes it; writing
            // its `next` field cannot race with anything.
            unsafe { (*node).next = head };
            match shard.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => head = actual,
            }
        }
        seq
    }

    /// Remove everything queued so far and return it sorted by global
    /// sequence number (i.e. in push order for a single producer, and in
    /// *a* consistent serialization for concurrent producers). Safe to
    /// call concurrently with pushes; concurrent drains each get disjoint
    /// events.
    pub fn drain(&self) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            // Sever the whole stack in one step; pushes racing with this
            // land either wholly in this batch or wholly in the next.
            let mut head = shard.swap(ptr::null_mut(), Ordering::Acquire);
            while !head.is_null() {
                // SAFETY: the swap above transferred ownership of the
                // entire chain to us; no other thread can reach these
                // nodes, so reconstituting each Box is sound and happens
                // exactly once per node.
                let node = unsafe { Box::from_raw(head) };
                head = node.next;
                out.push((node.seq, node.item));
            }
        }
        self.pending.fetch_sub(out.len(), Ordering::Release);
        // Stacks pop newest-first; restore the global total order.
        // Compare by wrapping distance from the watermark (a lower bound
        // on every undrained seq) so ordering survives u64 wraparound:
        // raw comparison would sort post-wrap seq 0 before pre-wrap
        // seq u64::MAX.
        let base = self.watermark.load(Ordering::Relaxed);
        out.sort_unstable_by_key(|&(seq, _)| seq.wrapping_sub(base));
        if let Some(&(last, _)) = out.last() {
            self.watermark
                .store(last.wrapping_add(1), Ordering::Relaxed);
        }
        out
    }

    /// Whether nothing is queued (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }
}

impl<T> Drop for ShardedEventQueue<T> {
    fn drop(&mut self) {
        for shard in self.shards.iter() {
            let mut head = shard.swap(ptr::null_mut(), Ordering::Acquire);
            while !head.is_null() {
                // SAFETY: `&mut self` in Drop means no other thread holds
                // a reference to the queue, so every still-published node
                // is exclusively ours to free, once each.
                let node = unsafe { Box::from_raw(head) };
                head = node.next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_preserves_push_order() {
        let q = ShardedEventQueue::new(8);
        for i in 0..100u64 {
            q.push(i);
        }
        assert_eq!(q.pending(), 100);
        let batch = q.drain();
        assert_eq!(batch.len(), 100);
        for (i, (seq, item)) in batch.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*item, i as u64);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drain_interleaved_with_pushes() {
        let q = ShardedEventQueue::new(4);
        q.push(1);
        q.push(2);
        let a = q.drain();
        q.push(3);
        let b = q.drain();
        let items: Vec<u64> = a.into_iter().chain(b).map(|(_, x)| x).collect();
        assert_eq!(items, vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        // Shrunk drastically under Miri: the interpreter is ~3 orders of
        // magnitude slower than native, and the interleaving depth, not
        // the event count, is what Miri checks.
        const THREADS: usize = if cfg!(miri) { 4 } else { 8 };
        const PER: u64 = if cfg!(miri) { 50 } else { 10_000 };
        use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
        let q = Arc::new(ShardedEventQueue::new(8));
        let drained = Arc::new(std::sync::Mutex::new(Vec::new()));
        let stop = Arc::new(StdAtomicUsize::new(0));
        // A drainer races the producers the whole time.
        let drainer = {
            let q = Arc::clone(&q);
            let drained = Arc::clone(&drained);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loop {
                let batch = q.drain();
                drained.lock().unwrap().extend(batch);
                if stop.load(StdOrdering::Acquire) == THREADS && q.is_empty() {
                    drained.lock().unwrap().extend(q.drain());
                    break;
                }
            })
        };
        let producers: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push((t as u64) * PER + i);
                    }
                    stop.fetch_add(1, StdOrdering::Release);
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drainer.join().unwrap();
        let mut all = drained.lock().unwrap().clone();
        assert_eq!(all.len(), THREADS * PER as usize, "no event lost");
        // Sequence numbers are unique.
        all.sort_unstable_by_key(|&(seq, _)| seq);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate sequence");
        }
        // Every item arrived exactly once, and each thread's items appear
        // in its own push order.
        let mut items: Vec<u64> = all.iter().map(|&(_, x)| x).collect();
        let mut last_per_thread = [None::<u64>; THREADS];
        for &(_, x) in &all {
            let t = (x / PER) as usize;
            if let Some(prev) = last_per_thread[t] {
                assert!(x > prev, "per-thread order violated");
            }
            last_per_thread[t] = Some(x);
        }
        items.sort_unstable();
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn drop_releases_pending_nodes() {
        let q = ShardedEventQueue::new(2);
        for i in 0..1000 {
            q.push(vec![i; 4]); // heap payloads; Miri/leak checkers would catch leaks
        }
        drop(q);
    }

    /// Dropping a queue with undrained events runs every payload's
    /// destructor exactly once — the property the Miri CI job verifies
    /// with its leak checker, asserted here with a drop counter so it
    /// also holds in plain test runs.
    #[test]
    fn drop_with_pending_frees_each_payload_once() {
        use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

        struct Bump(Arc<StdAtomicUsize>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, StdOrdering::SeqCst);
            }
        }

        let drops = Arc::new(StdAtomicUsize::new(0));
        let q = ShardedEventQueue::new(4);
        const N: usize = 257;
        for _ in 0..N {
            q.push(Bump(Arc::clone(&drops)));
        }
        assert_eq!(drops.load(StdOrdering::SeqCst), 0);
        drop(q);
        assert_eq!(
            drops.load(StdOrdering::SeqCst),
            N,
            "each payload dropped exactly once"
        );
    }

    /// Sequence numbers are compared by wrapping distance, so a queue
    /// whose counter crosses u64::MAX still drains in push order.
    #[test]
    fn seq_wraparound_preserves_drain_order() {
        let q = ShardedEventQueue::with_initial_seq(4, u64::MAX - 2);
        for i in 0..6u64 {
            q.push(i);
        }
        let batch = q.drain();
        let seqs: Vec<u64> = batch.iter().map(|&(s, _)| s).collect();
        let items: Vec<u64> = batch.iter().map(|&(_, x)| x).collect();
        assert_eq!(
            seqs,
            vec![u64::MAX - 2, u64::MAX - 1, u64::MAX, 0, 1, 2],
            "sequence stamps cross the wrap"
        );
        assert_eq!(
            items,
            vec![0, 1, 2, 3, 4, 5],
            "drain order is push order across the wrap"
        );
        // And the batches after the wrap keep working.
        q.push(6);
        q.push(7);
        let items: Vec<u64> = q.drain().into_iter().map(|(_, x)| x).collect();
        assert_eq!(items, vec![6, 7]);
    }

    /// With more registering threads than shards, stripes keep being
    /// handed out round-robin: every thread gets a distinct stripe id,
    /// stable for the life of the thread, and masking folds them onto the
    /// shard array. (Exact shard coverage is asserted in the model tests,
    /// where thread identity is deterministic.)
    #[test]
    fn thread_stripe_round_robin_when_threads_exceed_shards() {
        const THREADS: usize = 8;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(|| {
                    let a = super::thread_stripe();
                    let b = super::thread_stripe();
                    (a, b)
                })
            })
            .collect();
        let stripes: Vec<(usize, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &stripes {
            assert_eq!(a, b, "stripe is stable within a thread");
            assert!(seen.insert(*a), "stripe {a} handed out twice");
        }
        // Events from more threads than shards all land and drain intact.
        let q = Arc::new(ShardedEventQueue::new(2));
        let producers: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    q.push(t as u64);
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut items: Vec<u64> = q.drain().into_iter().map(|(_, x)| x).collect();
        items.sort_unstable();
        assert_eq!(items, (0..THREADS as u64).collect::<Vec<_>>());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedEventQueue::<u8>::new(0).shards(), 1);
        assert_eq!(ShardedEventQueue::<u8>::new(3).shards(), 4);
        assert_eq!(ShardedEventQueue::<u8>::new(16).shards(), 16);
    }
}
