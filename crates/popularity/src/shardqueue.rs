//! Lock-free sharded event queue for write-behind access recording.
//!
//! The paper's §4.4 write-behind cache ([`crate::writebehind`]) keeps read
//! queries from becoming read-modify-write storms on a *single-threaded*
//! server. Under concurrency the same idea needs a concurrent front end:
//! every query thread must be able to record "tuple `k` was accessed" with
//! no locks on the hot path, while a single background drainer folds those
//! events into the authoritative [`crate::FrequencyTracker`]s.
//!
//! [`ShardedEventQueue`] provides exactly that:
//!
//! * producers push onto one of `S` Treiber stacks (a compare-and-swap
//!   loop on an `AtomicPtr` head — lock-free, no waiting producers ever
//!   block each other across shards, and contention *within* a shard is a
//!   single CAS retry);
//! * every event is stamped with a global sequence number from one
//!   `AtomicU64`, so the drainer can merge the per-shard stacks back into
//!   one totally ordered batch. When the producers are a single thread,
//!   that order is exactly the push order — which is what lets the
//!   snapshot path reproduce the sequential path's decay arithmetic
//!   bit-for-bit (the inflated-increment scheme is order-sensitive);
//! * the drainer (`drain`) atomically severs each shard's stack with one
//!   `swap`, so no event is ever lost or observed twice, no matter how
//!   drains race with pushes.
//!
//! Shard choice is per-thread (a thread-local stripe id), so a thread's
//! own events never contend with its previous push, and threads spread
//! across shards round-robin.

use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

struct Node<T> {
    next: *mut Node<T>,
    seq: u64,
    item: T,
}

/// A lock-free multi-producer queue sharded into Treiber stacks, drained
/// in global sequence order by a single (or occasional) consumer.
#[derive(Debug)]
pub struct ShardedEventQueue<T> {
    shards: Box<[AtomicPtr<Node<T>>]>,
    seq: AtomicU64,
    pending: AtomicUsize,
}

// The queue hands items across threads; that is its whole purpose. The
// raw pointers are only ever owned by one side at a time: producers own a
// node until the CAS publishes it, the drainer owns a whole chain after
// the swap severs it.
unsafe impl<T: Send> Send for ShardedEventQueue<T> {}
unsafe impl<T: Send> Sync for ShardedEventQueue<T> {}

thread_local! {
    /// Per-thread shard stripe, assigned round-robin on first use.
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

fn thread_stripe() -> usize {
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
        s.set(v);
        v
    })
}

impl<T> ShardedEventQueue<T> {
    /// A queue with `shards` stacks (rounded up to a power of two, at
    /// least 1).
    pub fn new(shards: usize) -> ShardedEventQueue<T> {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedEventQueue {
            shards,
            seq: AtomicU64::new(0),
            pending: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Events pushed but not yet drained. Monotone between a push and the
    /// drain that consumes it; exact when quiescent.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Push one event, returning its global sequence number. Lock-free:
    /// a CAS loop on the owning shard's head pointer.
    pub fn push(&self, item: T) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[thread_stripe() & (self.shards.len() - 1)];
        // Count before publishing: a drain that pops this node must see
        // the increment (the Release CAS orders it), so `pending` can
        // over-count transiently but never underflow.
        self.pending.fetch_add(1, Ordering::Relaxed);
        let node = Box::into_raw(Box::new(Node {
            next: ptr::null_mut(),
            seq,
            item,
        }));
        let mut head = shard.load(Ordering::Relaxed);
        loop {
            // Safety: `node` is exclusively ours until the CAS succeeds.
            unsafe { (*node).next = head };
            match shard.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => head = actual,
            }
        }
        seq
    }

    /// Remove everything queued so far and return it sorted by global
    /// sequence number (i.e. in push order for a single producer, and in
    /// *a* consistent serialization for concurrent producers). Safe to
    /// call concurrently with pushes; concurrent drains each get disjoint
    /// events.
    pub fn drain(&self) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            // Sever the whole stack in one step; pushes racing with this
            // land either wholly in this batch or wholly in the next.
            let mut head = shard.swap(ptr::null_mut(), Ordering::Acquire);
            while !head.is_null() {
                // Safety: the swap transferred ownership of the entire
                // chain to us; nobody else can reach these nodes.
                let node = unsafe { Box::from_raw(head) };
                head = node.next;
                out.push((node.seq, node.item));
            }
        }
        self.pending.fetch_sub(out.len(), Ordering::Release);
        // Stacks pop newest-first; restore the global total order.
        out.sort_unstable_by_key(|&(seq, _)| seq);
        out
    }

    /// Whether nothing is queued (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }
}

impl<T> Drop for ShardedEventQueue<T> {
    fn drop(&mut self) {
        for shard in self.shards.iter() {
            let mut head = shard.swap(ptr::null_mut(), Ordering::Acquire);
            while !head.is_null() {
                // Safety: exclusive access in Drop.
                let node = unsafe { Box::from_raw(head) };
                head = node.next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_preserves_push_order() {
        let q = ShardedEventQueue::new(8);
        for i in 0..100u64 {
            q.push(i);
        }
        assert_eq!(q.pending(), 100);
        let batch = q.drain();
        assert_eq!(batch.len(), 100);
        for (i, (seq, item)) in batch.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*item, i as u64);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drain_interleaved_with_pushes() {
        let q = ShardedEventQueue::new(4);
        q.push(1);
        q.push(2);
        let a = q.drain();
        q.push(3);
        let b = q.drain();
        let items: Vec<u64> = a.into_iter().chain(b).map(|(_, x)| x).collect();
        assert_eq!(items, vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        const THREADS: usize = 8;
        const PER: u64 = 10_000;
        let q = Arc::new(ShardedEventQueue::new(8));
        let drained = Arc::new(std::sync::Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicUsize::new(0));
        // A drainer races the producers the whole time.
        let drainer = {
            let q = Arc::clone(&q);
            let drained = Arc::clone(&drained);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loop {
                let batch = q.drain();
                drained.lock().unwrap().extend(batch);
                if stop.load(Ordering::Acquire) == THREADS && q.is_empty() {
                    drained.lock().unwrap().extend(q.drain());
                    break;
                }
            })
        };
        let producers: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push((t as u64) * PER + i);
                    }
                    stop.fetch_add(1, Ordering::Release);
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drainer.join().unwrap();
        let mut all = drained.lock().unwrap().clone();
        assert_eq!(all.len(), THREADS * PER as usize, "no event lost");
        // Sequence numbers are unique.
        all.sort_unstable_by_key(|&(seq, _)| seq);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate sequence");
        }
        // Every item arrived exactly once, and each thread's items appear
        // in its own push order.
        let mut items: Vec<u64> = all.iter().map(|&(_, x)| x).collect();
        let mut last_per_thread = [None::<u64>; THREADS];
        for &(_, x) in &all {
            let t = (x / PER) as usize;
            if let Some(prev) = last_per_thread[t] {
                assert!(x > prev, "per-thread order violated");
            }
            last_per_thread[t] = Some(x);
        }
        items.sort_unstable();
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn drop_releases_pending_nodes() {
        let q = ShardedEventQueue::new(2);
        for i in 0..1000 {
            q.push(vec![i; 4]); // heap payloads; Miri/leak checkers would catch leaks
        }
        drop(q);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedEventQueue::<u8>::new(0).shards(), 1);
        assert_eq!(ShardedEventQueue::<u8>::new(3).shards(), 4);
        assert_eq!(ShardedEventQueue::<u8>::new(16).shards(), 16);
    }
}
