//! Top-k extraction over tracked frequencies (Figures 1–3 of the paper).

use crate::tracker::FrequencyTracker;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(key, count)` pair ordered by count ascending (min-heap helper).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    key: u64,
    count: f64,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest on top.
        other
            .count
            .total_cmp(&self.count)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// The `k` most frequent keys with their decay-normalized counts, sorted by
/// count descending (rank 1 first). Ties break toward the smaller key for
/// determinism.
pub fn top_k(tracker: &FrequencyTracker, k: usize) -> Vec<(u64, f64)> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (key, count) in tracker.iter() {
        heap.push(Entry { key, count });
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<(u64, f64)> = heap.into_iter().map(|e| (e.key, e.count)).collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker_with(counts: &[(u64, usize)]) -> FrequencyTracker {
        let mut t = FrequencyTracker::no_decay();
        for &(key, n) in counts {
            for _ in 0..n {
                t.record(key);
            }
        }
        t
    }

    #[test]
    fn picks_the_largest() {
        let t = tracker_with(&[(1, 5), (2, 50), (3, 10), (4, 1)]);
        let top = top_k(&t, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 3);
        assert_eq!(top[0].1, 50.0);
    }

    #[test]
    fn k_larger_than_population() {
        let t = tracker_with(&[(1, 2), (2, 1)]);
        let top = top_k(&t, 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1);
    }

    #[test]
    fn k_zero() {
        let t = tracker_with(&[(1, 1)]);
        assert!(top_k(&t, 0).is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let t = tracker_with(&[(9, 3), (4, 3), (7, 3)]);
        let top = top_k(&t, 3);
        let keys: Vec<u64> = top.iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![4, 7, 9], "equal counts sort by key");
    }

    #[test]
    fn sorted_descending() {
        let t = tracker_with(&[(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]);
        let top = top_k(&t, 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
