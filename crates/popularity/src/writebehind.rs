//! Write-behind count cache (paper §4.4).
//!
//! Adding a count attribute to each tuple "has the undesirable effect of
//! turning every read access into a read-modify-write access". The paper's
//! implementation instead keeps "a small, write-behind cache of tuple
//! counts" and flushes deltas to the backing store periodically. This
//! module models that design: increments accumulate in a bounded in-memory
//! delta buffer and are flushed to a [`CountStore`] when the buffer fills
//! (or on demand), amortizing the expensive store writes over many reads.

use crate::tracker::FrequencyTracker;
use std::collections::HashMap;

/// A durable (or at least authoritative) destination for count deltas.
pub trait CountStore {
    /// Apply a batch of `(key, delta)` increments.
    fn apply(&mut self, deltas: &[(u64, f64)]);
    /// Read the stored count for a key (0 if absent).
    fn read(&self, key: u64) -> f64;
    /// Number of keys stored.
    fn len(&self) -> usize;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A simple in-memory store that counts flushes, standing in for the
/// on-disk count table of the paper's implementation.
#[derive(Debug, Default)]
pub struct MemoryStore {
    counts: HashMap<u64, f64>,
    flushes: u64,
    rows_written: u64,
}

impl MemoryStore {
    /// A fresh, empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }

    /// Number of flush batches applied.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Total individual deltas applied across all flushes.
    pub fn rows_written(&self) -> u64 {
        self.rows_written
    }
}

impl CountStore for MemoryStore {
    fn apply(&mut self, deltas: &[(u64, f64)]) {
        for &(key, delta) in deltas {
            *self.counts.entry(key).or_insert(0.0) += delta;
        }
        self.flushes += 1;
        self.rows_written += deltas.len() as u64;
    }

    fn read(&self, key: u64) -> f64 {
        self.counts.get(&key).copied().unwrap_or(0.0)
    }

    fn len(&self) -> usize {
        self.counts.len()
    }
}

/// A [`FrequencyTracker`] is itself a valid write-behind sink: flushed
/// deltas land as weighted events at the tracker's *current* decay weight
/// (all events in one flush batch are contemporaries), so ranks, `f_max`,
/// and rescale bookkeeping stay live while individual reads stay cheap.
/// This is the concurrent evolution of §4.4: queries buffer, the flush
/// feeds the authority.
impl CountStore for FrequencyTracker {
    fn apply(&mut self, deltas: &[(u64, f64)]) {
        for &(key, delta) in deltas {
            self.record_static_weighted(key, delta);
        }
    }

    fn read(&self, key: u64) -> f64 {
        self.count(key)
    }

    fn len(&self) -> usize {
        self.tracked()
    }
}

/// A bounded write-behind delta buffer in front of a [`CountStore`].
#[derive(Debug)]
pub struct WriteBehindCache<S: CountStore> {
    store: S,
    buffer: HashMap<u64, f64>,
    capacity: usize,
    increments: u64,
}

impl<S: CountStore> WriteBehindCache<S> {
    /// Cache up to `capacity` distinct dirty keys before auto-flushing.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(store: S, capacity: usize) -> WriteBehindCache<S> {
        assert!(capacity > 0, "capacity must be positive");
        WriteBehindCache {
            store,
            buffer: HashMap::with_capacity(capacity),
            capacity,
            increments: 0,
        }
    }

    /// Record an increment; flushes automatically when the dirty set would
    /// exceed capacity.
    pub fn increment(&mut self, key: u64, delta: f64) {
        if !self.buffer.contains_key(&key) && self.buffer.len() >= self.capacity {
            self.flush();
        }
        *self.buffer.entry(key).or_insert(0.0) += delta;
        self.increments += 1;
    }

    /// The authoritative count: store value plus any buffered delta.
    pub fn read(&self, key: u64) -> f64 {
        self.store.read(key) + self.buffer.get(&key).copied().unwrap_or(0.0)
    }

    /// Push all buffered deltas to the store.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut deltas: Vec<(u64, f64)> = self.buffer.drain().collect();
        // Deterministic order helps testing and gives the store sequential
        // access patterns.
        deltas.sort_by_key(|&(k, _)| k);
        self.store.apply(&deltas);
    }

    /// Number of dirty (buffered) keys.
    pub fn dirty(&self) -> usize {
        self.buffer.len()
    }

    /// Total increments recorded.
    pub fn increments(&self) -> u64 {
        self.increments
    }

    /// Access the backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Flush and unwrap the backing store.
    pub fn into_store(mut self) -> S {
        self.flush();
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_buffered_and_flushed_state() {
        let mut c = WriteBehindCache::new(MemoryStore::new(), 4);
        c.increment(1, 1.0);
        c.increment(1, 1.0);
        assert_eq!(c.read(1), 2.0, "buffered deltas visible");
        c.flush();
        assert_eq!(c.read(1), 2.0, "flushed state visible");
        c.increment(1, 3.0);
        assert_eq!(c.read(1), 5.0, "mixed state visible");
    }

    #[test]
    fn auto_flush_on_capacity() {
        let mut c = WriteBehindCache::new(MemoryStore::new(), 2);
        c.increment(1, 1.0);
        c.increment(2, 1.0);
        assert_eq!(c.store().flushes(), 0);
        c.increment(3, 1.0); // third distinct key forces a flush
        assert_eq!(c.store().flushes(), 1);
        assert_eq!(c.dirty(), 1);
    }

    #[test]
    fn repeat_keys_do_not_force_flush() {
        let mut c = WriteBehindCache::new(MemoryStore::new(), 2);
        for _ in 0..100 {
            c.increment(7, 1.0);
        }
        assert_eq!(c.store().flushes(), 0, "hot key coalesces in buffer");
        assert_eq!(c.read(7), 100.0);
        assert_eq!(c.increments(), 100);
    }

    #[test]
    fn flush_amortization() {
        // 10_000 increments over 100 keys with a 100-key buffer should
        // produce dramatically fewer store writes than increments.
        let mut c = WriteBehindCache::new(MemoryStore::new(), 100);
        for i in 0..10_000u64 {
            c.increment(i % 100, 1.0);
        }
        c.flush();
        let store = c.store();
        assert!(
            store.rows_written() <= 200,
            "wrote {}",
            store.rows_written()
        );
        let total: f64 = (0..100).map(|k| store.read(k)).sum();
        assert_eq!(total, 10_000.0);
    }

    #[test]
    fn into_store_flushes() {
        let mut c = WriteBehindCache::new(MemoryStore::new(), 8);
        c.increment(5, 2.5);
        let store = c.into_store();
        assert_eq!(store.read(5), 2.5);
    }

    #[test]
    fn empty_flush_is_free() {
        let mut c = WriteBehindCache::new(MemoryStore::new(), 8);
        c.flush();
        assert_eq!(c.store().flushes(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        WriteBehindCache::new(MemoryStore::new(), 0);
    }

    #[test]
    fn tracker_as_store_learns_ranks_from_flushes() {
        let tracker = FrequencyTracker::no_decay();
        let mut c = WriteBehindCache::new(tracker, 16);
        for _ in 0..50 {
            c.increment(1, 1.0);
        }
        for _ in 0..10 {
            c.increment(2, 1.0);
        }
        assert_eq!(c.read(1), 50.0, "buffered deltas visible through read");
        let tracker = c.into_store();
        assert_eq!(tracker.count(1), 50.0);
        assert_eq!(tracker.count(2), 10.0);
        assert_eq!(tracker.rank(1), 1);
        assert_eq!(tracker.rank(2), 2);
    }

    #[test]
    fn tracker_store_respects_decay_weight_at_flush_time() {
        // Deltas flushed after decay boundaries are worth full fresh
        // accesses at flush time — older flushes fade relative to them.
        let tracker = FrequencyTracker::new(crate::DecaySchedule::new(2.0));
        let mut c = WriteBehindCache::new(tracker, 4);
        c.increment(1, 1.0);
        c.flush();
        let mut tracker = c.into_store();
        tracker.tick_boundary();
        tracker.record_static_weighted(2, 1.0);
        assert!(tracker.count(2) > tracker.count(1));
        assert_eq!(tracker.count(2), 1.0);
        assert_eq!(tracker.count(1), 0.5);
    }
}
