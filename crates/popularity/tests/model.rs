//! Deterministic model-checking of the lock-free sharded event queue.
//!
//! Built only with the `model` feature **and** `--cfg delayguard_model`
//! (e.g. `RUSTFLAGS="--cfg delayguard_model" cargo test -p
//! delayguard-popularity --features model --test model`): the crate's
//! [`delayguard_popularity::sync`] facade then resolves to
//! `loom_lite::sync`, and every test body below runs once per explored
//! thread interleaving — the assertions hold on *every* schedule up to
//! the preemption bound, or the harness panics with a replayable seed.
#![cfg(all(feature = "model", delayguard_model))]

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::Arc;

use delayguard_popularity::ShardedEventQueue;
use loom_lite::{model, thread};

/// (a) Pushes racing a drain never lose or duplicate an event: two
/// producer threads race the main thread's drains; every pushed item is
/// drained exactly once, with a unique sequence stamp.
#[test]
fn racing_push_drain_loses_nothing_duplicates_nothing() {
    model::run(|| {
        let q = Arc::new(ShardedEventQueue::new(2));
        let q1 = Arc::clone(&q);
        let q2 = Arc::clone(&q);
        let t1 = thread::spawn(move || {
            q1.push(10u64);
        });
        let t2 = thread::spawn(move || {
            q2.push(20u64);
        });
        // Drain while the producers are still running…
        let mut got = q.drain();
        t1.join().unwrap();
        t2.join().unwrap();
        // …then sweep up whatever landed after the racing drain.
        got.extend(q.drain());
        let mut seqs: Vec<u64> = got.iter().map(|&(s, _)| s).collect();
        let mut items: Vec<u64> = got.iter().map(|&(_, x)| x).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 2, "duplicate or missing sequence stamp");
        items.sort_unstable();
        assert_eq!(items, vec![10, 20], "event lost or duplicated");
        assert!(q.is_empty());
    });
}

/// (c) The write-behind drain feeds the tracker in sequence-stamp order,
/// and for a single producer that order is exactly the push order — the
/// property that keeps the decay arithmetic's inflated-increment scheme
/// bit-exact. Checked across every interleaving of a mid-stream drain.
#[test]
fn single_producer_drain_order_is_push_order() {
    model::run(|| {
        let q = Arc::new(ShardedEventQueue::new(2));
        let qp = Arc::clone(&q);
        let producer = thread::spawn(move || {
            qp.push(1u64);
            qp.push(2u64);
            qp.push(3u64);
        });
        // A drain racing the pushes: whatever lands in this batch and the
        // final batch, concatenation must preserve push order.
        let mut got = q.drain();
        producer.join().unwrap();
        got.extend(q.drain());
        let items: Vec<u64> = got.iter().map(|&(_, x)| x).collect();
        assert_eq!(items, vec![1, 2, 3], "drain order must match push order");
        // And the sequence stamps are strictly increasing across batches.
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0, "sequence stamps out of order");
        }
    });
}

/// Dropping the queue with events still pending frees every payload
/// exactly once, under every interleaving of a racing producer.
#[test]
fn drop_with_pending_frees_exactly_once() {
    struct Bump(Arc<StdAtomicUsize>);
    impl Drop for Bump {
        fn drop(&mut self) {
            self.0.fetch_add(1, StdOrdering::SeqCst);
        }
    }
    model::run(|| {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let q = Arc::new(ShardedEventQueue::new(2));
        let qp = Arc::clone(&q);
        let dp = Arc::clone(&drops);
        let producer = thread::spawn(move || {
            qp.push(Bump(Arc::clone(&dp)));
            qp.push(Bump(dp));
        });
        q.push(Bump(Arc::clone(&drops)));
        producer.join().unwrap();
        drop(q);
        assert_eq!(
            drops.load(StdOrdering::SeqCst),
            3,
            "every pending payload freed exactly once"
        );
    });
}

/// Under the model, thread striping is the deterministic model-thread
/// index, so with two producer threads and two shards both shards carry
/// traffic and the merge still reconstructs the global sequence order.
#[test]
fn striping_covers_shards_and_merge_restores_order() {
    model::run(|| {
        let q = Arc::new(ShardedEventQueue::new(2));
        let q1 = Arc::clone(&q);
        let q2 = Arc::clone(&q);
        // Model tids 1 and 2 → stripes 1 and 2 → shards 1 and 0.
        let t1 = thread::spawn(move || q1.push(100u64));
        let t2 = thread::spawn(move || q2.push(200u64));
        let s1 = t1.join().unwrap();
        let s2 = t2.join().unwrap();
        let got = q.drain();
        assert_eq!(got.len(), 2);
        // Merge must be in sequence order no matter which shard held what.
        let seqs: Vec<u64> = got.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, {
            let mut v = vec![s1, s2];
            v.sort_unstable();
            v
        });
    });
}

/// Negative control — the harness actually catches the bug class it
/// exists for. This "queue" publishes with a plain load+store instead of
/// the CAS retry loop (exactly the bug dropping `compare_exchange` from
/// `push` would introduce); two racing producers then overwrite each
/// other's head pointer on some interleaving and an event vanishes. The
/// model checker must find that schedule.
#[test]
#[should_panic(expected = "event lost")]
fn seeded_bug_dropped_cas_loop_is_caught() {
    use loom_lite::sync::{AtomicPtr, Ordering};

    struct BrokenStack {
        head: AtomicPtr<BrokenNode>,
    }
    struct BrokenNode {
        next: *mut BrokenNode,
        item: u64,
    }
    // SAFETY-free: nodes are leaked on the lost-update schedules (that is
    // the point); the test only counts what survived.
    impl BrokenStack {
        fn push(&self, item: u64) {
            let head = self.head.load(Ordering::Acquire);
            let node = Box::into_raw(Box::new(BrokenNode { next: head, item }));
            // BUG under test: unconditional store instead of a CAS loop —
            // a concurrent push that landed between the load above and
            // this store is silently overwritten.
            self.head.store(node, Ordering::Release);
        }
        fn drain(&self) -> Vec<u64> {
            let mut head = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
            let mut out = Vec::new();
            while !head.is_null() {
                // SAFETY: the swap severed the chain; on schedules where
                // no update was lost each node is reachable exactly once.
                let node = unsafe { Box::from_raw(head) };
                head = node.next;
                out.push(node.item);
            }
            out
        }
    }
    // SAFETY: raw head pointer is only dereferenced by the severing
    // drain; this negative fixture intentionally tolerates leaks.
    unsafe impl Send for BrokenStack {}
    // SAFETY: as above.
    unsafe impl Sync for BrokenStack {}

    model::run(|| {
        let s = Arc::new(BrokenStack {
            head: AtomicPtr::new(std::ptr::null_mut()),
        });
        let s1 = Arc::clone(&s);
        let s2 = Arc::clone(&s);
        let t1 = thread::spawn(move || s1.push(1));
        let t2 = thread::spawn(move || s2.push(2));
        t1.join().unwrap();
        t2.join().unwrap();
        let got = s.drain();
        assert_eq!(got.len(), 2, "event lost");
    });
}
