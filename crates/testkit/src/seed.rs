//! Seed plumbing: every failure prints the seed that reproduces it.
//!
//! Tests run their body under [`check`] (one seed) or [`check_seeds`]
//! (several). On a panic the harness prints the exact command that
//! replays the failing execution — `TESTKIT_REPLAY=<seed> cargo test ...`
//! — and then resumes the panic so the test still fails. Setting
//! `TESTKIT_REPLAY` overrides every default seed in the process, which is
//! how CI failure output becomes a local single-seed rerun.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The environment variable that overrides every default seed.
pub const REPLAY_ENV: &str = "TESTKIT_REPLAY";

/// The seed to use: `TESTKIT_REPLAY` if set (and parseable as `u64`),
/// otherwise `default_seed`.
pub fn replay_seed(default_seed: u64) -> u64 {
    match std::env::var(REPLAY_ENV) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{REPLAY_ENV}={v:?} is not a u64 seed")),
        Err(_) => default_seed,
    }
}

/// Run `body` with the (possibly replay-overridden) seed; on panic,
/// print the replay command before failing.
pub fn check<F: FnOnce(u64)>(name: &str, default_seed: u64, body: F) {
    check_in("delayguard-testkit", name, default_seed, body);
}

/// [`check`] for a seeded test living in another package: the replay
/// command names `package` so the printed rerun actually hits the test.
pub fn check_in<F: FnOnce(u64)>(package: &str, name: &str, default_seed: u64, body: F) {
    let seed = replay_seed(default_seed);
    run_with_seed(package, name, seed, body);
}

/// Run `body` once per seed. With `TESTKIT_REPLAY` set, runs only that
/// seed — the failing execution, nothing else.
pub fn check_seeds<F: FnMut(u64)>(name: &str, default_seeds: &[u64], body: F) {
    check_seeds_in("delayguard-testkit", name, default_seeds, body);
}

/// [`check_seeds`] for a seeded test living in another package.
pub fn check_seeds_in<F: FnMut(u64)>(
    package: &str,
    name: &str,
    default_seeds: &[u64],
    mut body: F,
) {
    if let Ok(v) = std::env::var(REPLAY_ENV) {
        let seed = v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{REPLAY_ENV}={v:?} is not a u64 seed"));
        run_with_seed(package, name, seed, &mut body);
        return;
    }
    for &seed in default_seeds {
        run_with_seed(package, name, seed, &mut body);
    }
}

fn run_with_seed<F: FnOnce(u64)>(package: &str, name: &str, seed: u64, body: F) {
    // The body only sees the seed by value, so unwind safety is trivially
    // fine: nothing shared survives the panic.
    let result = catch_unwind(AssertUnwindSafe(|| body(seed)));
    if let Err(panic) = result {
        eprintln!("\n=== testkit failure in `{name}` (seed {seed}) ===");
        eprintln!("replay the exact execution with:");
        eprintln!("    {REPLAY_ENV}={seed} cargo test -p {package} {name}\n");
        resume_unwind(panic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_used_without_env() {
        // The replay env var applies process-wide; tests that set it
        // would race. This only checks the default path (CI never sets
        // TESTKIT_REPLAY for the plain test job).
        if std::env::var(REPLAY_ENV).is_err() {
            assert_eq!(replay_seed(42), 42);
        }
    }

    #[test]
    fn panics_propagate_through_check() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("inner", 7, |_seed| panic!("boom"));
        }));
        assert!(caught.is_err(), "check must not swallow failures");
    }

    #[test]
    fn check_seeds_runs_every_seed() {
        if std::env::var(REPLAY_ENV).is_ok() {
            return; // replay mode pins a single seed by design
        }
        let mut seen = Vec::new();
        check_seeds("multi", &[1, 2, 3], |s| seen.push(s));
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
