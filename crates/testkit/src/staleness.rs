//! §3 staleness campaigns: a live update stream raced against an
//! extraction crawl, in virtual time.
//!
//! The paper's second defense axis prices tuples by *update* rate
//! (Eq. 9, `d(i) = (c/N)·i^α / r_max`): hot-updated tuples come back
//! fast, cold ones slowly — so by the time a crawler has dragged the
//! whole database out, the head of the update distribution has moved on
//! and the copy is stale. Eq. 11/12 give the closed-form maximum stale
//! fraction `S_max`; this module measures it end to end.
//!
//! A [`StalenessCampaign`] builds the usual simulated deployment with
//! the combined access+update policy (access term zeroed so the update
//! term is the whole price), warms the update tracker so every rank's
//! estimated rate equals its true Zipf(α) rate, then races two clients
//! through the real front door:
//!
//! * a **crawler** extracting every tuple hottest-update-first (the
//!   order that maximizes staleness, and the one §3's crossover math
//!   assumes), and
//! * an **updater** issuing real `UPDATE` statements through the new
//!   mutation frames, each rank on its own deterministic period
//!   `1/r_i` — phase-locked to the crawl start so the measured stale
//!   set matches the closed form instead of a randomized upper bound.
//!
//! Staleness is judged on the *extracted bytes*: a tuple is stale iff
//! the value the crawler walked away with differs from the value the
//! updater had committed by the end of the crawl. The report also
//! carries per-tuple age-of-information (how long before crawl end each
//! stale value was captured), so tests can assert both the fraction and
//! the freshness profile against [`delayguard_core::analysis`].

use crate::net::{self, MutationOutcome, NetLink};
use crate::world::{MeshLink, SimConfig, SimWorld};
use delayguard_core::access::AccessDelayPolicy;
use delayguard_core::analysis;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::policy::GuardPolicy;
use delayguard_core::update::UpdateDelayPolicy;
use delayguard_core::GuardConfig;
use delayguard_query::StatementOutput;
use delayguard_server::gate::MutationVerb;
use delayguard_server::protocol::Frame;
use delayguard_storage::{RowId, Value};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Per-attempt timeout for a registration exchange (virtual seconds).
const REGISTER_TIMEOUT_SECS: f64 = 600.0;

/// Timeout for one mutation round trip: mutations are not delayed, so
/// anything beyond transport jitter means the world wedged.
const MUTATION_TIMEOUT_SECS: f64 = 60.0;

/// The §3 running example, parameterized.
#[derive(Debug, Clone)]
pub struct StalenessParams {
    /// Database size (tuples), ranked 1 (hottest-updated) to `n`.
    pub n: u64,
    /// Zipf exponent of the *update* distribution: rank `i` is updated
    /// at rate `r_i = r_max · i^(−α)`.
    pub alpha: f64,
    /// Eq. 9 delay scale `c` (the fraction of an update period a
    /// tuple's extraction delay represents).
    pub c: f64,
    /// Update rate of the hottest tuple, updates per virtual second.
    pub rmax: f64,
    /// Virtual seconds of update history warmed into the tracker before
    /// the crawl: with counts `r_i · warm_secs` recorded at time zero,
    /// the tracker's estimated rate at crawl start is `r_i` exactly.
    pub warm_secs: f64,
    /// Gatekeeper configuration (wide-open by default so the update-rate
    /// policy is the only brake).
    pub gatekeeper: GatekeeperConfig,
    /// Timer-wheel tick. Eq. 9 delays are milliseconds-to-subsecond at
    /// the default scale, so the tick must be fine or rounding distorts
    /// the measured total.
    pub tick: Duration,
    /// Per-connection send-queue row cap.
    pub send_queue_rows: usize,
}

impl Default for StalenessParams {
    /// `n = 512`, `α = 1`, `c = 0.3`, `r_max = 2/s`: the crawl takes
    /// `d_total = (c/n)·Σi^α / r_max ≈ 38.5` virtual seconds and the
    /// closed form predicts `S ≈ 0.15` — comfortably interior, so both
    /// under- and over-shoot are detectable.
    fn default() -> StalenessParams {
        StalenessParams {
            n: 512,
            alpha: 1.0,
            c: 0.3,
            rmax: 2.0,
            warm_secs: 40_000.0,
            gatekeeper: GatekeeperConfig {
                per_user_rate: 1e9,
                per_user_burst: 1e9,
                per_subnet_rate: 1e9,
                per_subnet_burst: 1e9,
                registration: RegistrationPolicy::interval(0.0),
                storefront_query_threshold: 0,
            },
            tick: Duration::from_millis(1),
            send_queue_rows: 4096,
        }
    }
}

/// What the race measured.
#[derive(Debug, Clone)]
pub struct StalenessReport {
    /// Tuples extracted (= `n`).
    pub n: u64,
    /// Crawl wall time in virtual seconds (first query sent to last
    /// `DONE`).
    pub crawl_secs: f64,
    /// Sum of server-charged delays across the crawl.
    pub total_delay_secs: f64,
    /// `UPDATE` statements the updater pushed through the front door.
    pub updates_issued: u64,
    /// Extracted tuples whose bytes differ from the committed value at
    /// crawl end.
    pub stale: u64,
    /// `stale / n`.
    pub stale_fraction: f64,
    /// Eq. 11/12 exact closed form
    /// ([`analysis::stale_fraction_exact`]) for these parameters.
    pub expected_fraction: f64,
    /// Eq. 12 asymptotic `S_max` ([`analysis::smax_asymptotic`]).
    pub smax: f64,
    /// Mean age-of-information of the stale tuples: crawl end minus the
    /// virtual time their (already superseded) value was captured.
    pub mean_age_secs: f64,
    /// Maximum age-of-information over the stale tuples.
    pub max_age_secs: f64,
    /// Minimum over all queries of `(done − sent) − charged delay`:
    /// negative means some tuple was released early.
    pub min_margin_secs: f64,
}

/// A simulated deployment seeded as the §3 running example.
pub struct StalenessCampaign {
    world: SimWorld,
    params: StalenessParams,
    rids: Vec<RowId>,
}

impl StalenessCampaign {
    /// Build the world with the combined access+update policy (access
    /// term capped at zero so Eq. 9 is the whole price), create and
    /// populate the directory, and warm the update tracker with
    /// `r_i · warm_secs` events per rank at virtual time zero.
    pub fn new(seed: u64, params: StalenessParams) -> StalenessCampaign {
        // The combined policy exercises the same max-combine path a
        // production hybrid deployment runs; the zero access cap makes
        // the update term the unique maximum for every tuple.
        let access = AccessDelayPolicy::new(1.0, 1.0).with_cap(0.0);
        let update = UpdateDelayPolicy::new(params.c).with_cap(3600.0);
        let guard = GuardConfig::paper_default().with_policy(GuardPolicy::Hybrid(access, update));
        let gate = delayguard_server::gate::GateConfig {
            gatekeeper: params.gatekeeper,
            ..delayguard_server::gate::GateConfig::default()
        };
        let world = SimWorld::new(
            seed,
            SimConfig {
                guard,
                gate,
                tick: params.tick,
                send_queue_rows: params.send_queue_rows,
                faults: crate::net::FaultPlan::ideal(),
            },
        );
        let db = world.db();
        db.execute_at(
            "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
            0.0,
        )
        .expect("create table");
        db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
            .expect("create index");
        let mut rids = Vec::with_capacity(params.n as usize);
        for rank in 1..=params.n {
            let id = rank - 1;
            let resp = db
                .execute_at(
                    &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
                    0.0,
                )
                .expect("insert row");
            match resp.output {
                StatementOutput::Inserted { rids: mut r } => {
                    rids.push(r.pop().expect("one rid per insert"))
                }
                other => panic!("unexpected insert output: {other:?}"),
            }
        }
        let counts: Vec<(RowId, f64)> = rids
            .iter()
            .enumerate()
            .map(|(i, &rid)| {
                let rank = (i + 1) as f64;
                let rate = params.rmax * rank.powf(-params.alpha);
                (rid, rate * params.warm_secs)
            })
            .collect();
        db.warm_updates("directory", &counts, 0.0);
        StalenessCampaign {
            world,
            params,
            rids,
        }
    }

    /// The underlying world (digest, metrics, fault control).
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// The campaign parameters.
    pub fn params(&self) -> &StalenessParams {
        &self.params
    }

    /// The `RowId` of rank `i` (1-based).
    pub fn rid_of_rank(&self, rank: u64) -> RowId {
        self.rids[(rank - 1) as usize]
    }

    /// Eq. 9 price of rank `i` under the warmed tracker.
    pub fn analytic_delay_at_rank(&self, rank: u64) -> f64 {
        let p = &self.params;
        let rate = p.rmax * (rank as f64).powf(-p.alpha);
        p.c / (p.n as f64 * rate)
    }

    /// The closed-form total a full hottest-first crawl pays.
    pub fn analytic_total(&self) -> f64 {
        (1..=self.params.n)
            .map(|i| self.analytic_delay_at_rank(i))
            .sum()
    }

    /// Race the extraction crawl against the live update stream and
    /// measure what fraction of the extracted copy is stale at the end.
    pub fn run(&mut self) -> StalenessReport {
        let p = self.params.clone();
        // Age the warm counts so estimated rate = true rate at start.
        self.world.run_for(p.warm_secs);

        let mut crawl_link = self.world.connect_link([10, 0, 0, 1]);
        let (crawl_user, _) = net::register_until_admitted(
            &mut self.world,
            &mut crawl_link,
            [0; 4],
            REGISTER_TIMEOUT_SECS,
        )
        .expect("crawler registration");
        let mut upd_link = self.world.connect_link([10, 0, 1, 1]);
        let (upd_user, _) = net::register_until_admitted(
            &mut self.world,
            &mut upd_link,
            [0; 4],
            REGISTER_TIMEOUT_SECS,
        )
        .expect("updater registration");

        let crawl_start = crawl_link.now_secs();
        // The update schedule: rank i fires at crawl_start + k/r_i for
        // k = 1, 2, … — deterministic phase zero. (A random phase per
        // tuple is the *average-case* adversary; §3's crossover bound
        // is the phase-aligned schedule measured here.)
        let period = |rank: u64| (rank as f64).powf(p.alpha) / p.rmax;
        let due_nanos =
            |rank: u64, k: u64| ((crawl_start + k as f64 * period(rank)) * 1e9).round() as u64;
        let mut schedule: BinaryHeap<Reverse<(u64, u64)>> = (1..=p.n)
            .map(|rank| Reverse((due_nanos(rank, 1), rank)))
            .collect();
        let mut fired = vec![0u64; p.n as usize];
        let mut extracted: Vec<Option<(f64, String)>> = vec![None; p.n as usize];

        let mut updates_issued = 0u64;
        let mut next_qid: u32 = 1;
        let mut total_delay_secs = 0.0;
        let mut min_margin_secs = f64::INFINITY;
        let mut next_rank = 1u64;
        let mut in_flight: Option<(u64, u32, f64)> = None; // (rank, qid, sent_at)
        let mut idle_passes = 0u32;

        let issue_update = |world: &SimWorld, link: &mut MeshLink, rank: u64, k: u64, qid: u32| {
            let sql = format!(
                "UPDATE directory SET entry = 'u{k}' WHERE id = {}",
                rank - 1
            );
            match net::run_mutation(
                link,
                qid,
                upd_user,
                MutationVerb::Update,
                &sql,
                MUTATION_TIMEOUT_SECS,
            )
            .expect("updater link alive")
            {
                MutationOutcome::Mutated { rows: 1, .. } => {}
                other => panic!(
                    "update rank {rank} k {k} at t={}: {other:?}",
                    world.now_secs()
                ),
            }
        };

        loop {
            // Fire every update that has come due. Clock advances only
            // inside recv below, and those waits are bounded by the next
            // due time, so no update ever fires late by more than the
            // mutation round trip (one tick).
            while let Some(&Reverse((due, rank))) = schedule.peek() {
                if due as f64 / 1e9 > self.world.now_secs() + 1e-9 {
                    break;
                }
                schedule.pop();
                let k = fired[(rank - 1) as usize] + 1;
                fired[(rank - 1) as usize] = k;
                let qid = next_qid;
                next_qid += 1;
                issue_update(&self.world, &mut upd_link, rank, k, qid);
                updates_issued += 1;
                schedule.push(Reverse((due_nanos(rank, k + 1), rank)));
                idle_passes = 0;
            }
            if in_flight.is_none() {
                if next_rank > p.n {
                    break;
                }
                let qid = next_qid;
                next_qid += 1;
                let sql = format!("SELECT * FROM directory WHERE id = {}", next_rank - 1);
                crawl_link
                    .send(&Frame::Query {
                        query_id: qid,
                        user: crawl_user,
                        sql,
                    })
                    .expect("crawler link alive");
                in_flight = Some((next_rank, qid, crawl_link.now_secs()));
                next_rank += 1;
            }
            // Wait for crawler frames, but never past the next due
            // update (the rank-n period bounds the wait regardless).
            let wait = match schedule.peek() {
                Some(&Reverse((due, _))) => (due as f64 / 1e9 - self.world.now_secs()).max(0.0),
                None => 1.0,
            };
            let (rank, qid, sent_at) = in_flight.expect("query in flight");
            match crawl_link.recv(wait).expect("crawler link alive") {
                Some(arrival) => {
                    idle_passes = 0;
                    match arrival.frame {
                        Frame::Row { query_id, row, .. } if query_id == qid => {
                            let entry = match row.get(1) {
                                Some(Value::Text(s)) => s.clone(),
                                other => panic!("rank {rank}: bad entry column {other:?}"),
                            };
                            extracted[(rank - 1) as usize] = Some((arrival.at_secs, entry));
                        }
                        Frame::Done {
                            query_id,
                            delay_secs,
                            ..
                        } if query_id == qid => {
                            assert!(
                                extracted[(rank - 1) as usize].is_some(),
                                "rank {rank} finished without a row"
                            );
                            total_delay_secs += delay_secs;
                            let margin = (arrival.at_secs - sent_at) - delay_secs;
                            min_margin_secs = min_margin_secs.min(margin);
                            in_flight = None;
                        }
                        Frame::Refused { reason, .. } => {
                            panic!("rank {rank} refused: {reason:?}")
                        }
                        Frame::Error { message, .. } => {
                            panic!("rank {rank} failed: {message}")
                        }
                        _ => {}
                    }
                }
                None => {
                    idle_passes += 1;
                    assert!(
                        idle_passes < 10_000,
                        "staleness campaign wedged at t={} rank {rank}:\n{}",
                        self.world.now_secs(),
                        self.world.debug_snapshot()
                    );
                }
            }
        }
        let t_end = self.world.now_secs();

        // Catch-up: an update due in the same tick the last row was
        // released may still be queued — it belongs to the ≤ t_end
        // window, so fold it into the final state before judging.
        while let Some(&Reverse((due, rank))) = schedule.peek() {
            if due as f64 / 1e9 > t_end + 1e-9 {
                break;
            }
            schedule.pop();
            let k = fired[(rank - 1) as usize] + 1;
            fired[(rank - 1) as usize] = k;
            let qid = next_qid;
            next_qid += 1;
            issue_update(&self.world, &mut upd_link, rank, k, qid);
            updates_issued += 1;
            schedule.push(Reverse((due_nanos(rank, k + 1), rank)));
        }

        // Judge staleness on the bytes: extracted value vs the value the
        // updater had committed by crawl end.
        let mut stale = 0u64;
        let mut ages = Vec::new();
        for rank in 1..=p.n {
            let idx = (rank - 1) as usize;
            let (at_secs, entry) = extracted[idx].as_ref().expect("every rank extracted");
            let k = fired[idx];
            let current = if k == 0 {
                format!("entry-{}", rank - 1)
            } else {
                format!("u{k}")
            };
            if *entry != current {
                stale += 1;
                ages.push(t_end - at_secs);
            }
        }
        let mean_age_secs = if ages.is_empty() {
            0.0
        } else {
            ages.iter().sum::<f64>() / ages.len() as f64
        };
        let max_age_secs = ages.iter().copied().fold(0.0, f64::max);

        StalenessReport {
            n: p.n,
            crawl_secs: t_end - crawl_start,
            total_delay_secs,
            updates_issued,
            stale,
            stale_fraction: stale as f64 / p.n as f64,
            expected_fraction: analysis::stale_fraction_exact(p.n, p.alpha, p.c),
            smax: analysis::smax_asymptotic(p.alpha, p.c),
            mean_age_secs,
            max_age_secs,
            min_margin_secs,
        }
    }
}
