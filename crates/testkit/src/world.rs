//! The simulated deployment: the real server stack on a virtual clock.
//!
//! A [`SimWorld`] owns exactly the objects the TCP server owns — a
//! [`GuardedDatabase`] (snapshot read path and all), a manual-mode
//! [`DelayScheduler`] with the real timer wheel, and the
//! [`FrontDoor`] — all sharing one [`ManualClock`]. Clients connect over
//! an in-memory mesh; every frame crosses the real wire codec in both
//! directions, so what travels is bytes, not objects.
//!
//! Time is event-driven: the world advances the clock straight to the
//! next scheduled thing (a wheel deadline or a frame arrival) and
//! processes everything due there. A 30-day adversary campaign is a few
//! thousand events — the wheel fast-forwards across empty spans, so the
//! cost is proportional to traffic, never to simulated time.
//!
//! Determinism: the world is single-threaded, every component reads the
//! injected clock, connections iterate in id order, and all fault
//! sampling draws from one seeded RNG. Two worlds built from the same
//! seed and driven by the same calls produce bit-identical executions —
//! checkable via [`SimWorld::digest`], which folds every delivered
//! frame's bytes and delivery time into an order-sensitive hash.

use crate::net::{Arrival, FaultPlan, LinkError, NetLink, SimNet};
use delayguard_core::clock::{nanos_to_secs, secs_to_nanos, Clock, ManualClock};
use delayguard_core::{GuardConfig, GuardedDatabase};
use delayguard_query::Engine;
use delayguard_server::gate::{FrameSink, FrontDoor, GateConfig, SessionControl, SessionState};
use delayguard_server::metrics::ServerMetrics;
use delayguard_server::protocol::{read_frame, write_frame, Frame};
use delayguard_server::scheduler::DelayScheduler;
use delayguard_sim::Registry;
use delayguard_workload::Rng;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Identifies one simulated connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

/// Configuration of a simulated deployment (the subset of the TCP
/// server's knobs that exist without sockets).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Guard (delay policy) configuration.
    pub guard: GuardConfig,
    /// Front-door (gatekeeper, refusal hints) configuration.
    pub gate: GateConfig,
    /// Timer-wheel granularity; delays round up to the next tick.
    pub tick: Duration,
    /// Per-connection cap on rows admitted but not yet delivered to the
    /// mesh — mirrors the TCP server's bounded send queue, so the
    /// `Overloaded` backpressure path is reachable in simulation.
    pub send_queue_rows: usize,
    /// Fault plan applied to newly created links (override per link with
    /// [`SimWorld::set_faults`]).
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            guard: GuardConfig::paper_default(),
            gate: GateConfig::default(),
            tick: Duration::from_millis(1),
            send_queue_rows: 4096,
            faults: FaultPlan::ideal(),
        }
    }
}

// ---- the per-connection frame sink --------------------------------------

/// The mesh's [`FrameSink`]: the front door pushes response frames here
/// (scheduler jobs included); the world drains them onto the simulated
/// wire. Row accounting mirrors the TCP server's bounded send queue:
/// reservations are all-or-nothing and released as rows leave.
struct SimSink {
    inner: Mutex<SinkInner>,
}

struct SinkInner {
    queue: Vec<Frame>,
    rows_cap: usize,
    rows_outstanding: usize,
}

impl SimSink {
    fn new(rows_cap: usize) -> SimSink {
        SimSink {
            inner: Mutex::new(SinkInner {
                queue: Vec::new(),
                rows_cap,
                rows_outstanding: 0,
            }),
        }
    }

    /// Take everything queued, releasing row reservations as they leave.
    fn drain(&self) -> Vec<Frame> {
        let mut g = self.inner.lock();
        let out = std::mem::take(&mut g.queue);
        let rows = out
            .iter()
            .filter(|f| matches!(f, Frame::Row { .. } | Frame::Mutated { .. }))
            .count();
        g.rows_outstanding = g.rows_outstanding.saturating_sub(rows);
        out
    }
}

impl FrameSink for SimSink {
    fn push_control(&self, frame: Frame) {
        self.inner.lock().queue.push(frame);
    }

    fn push_row(&self, frame: Frame) {
        self.inner.lock().queue.push(frame);
    }

    fn try_reserve_rows(&self, n: usize) -> bool {
        let mut g = self.inner.lock();
        if g.rows_outstanding + n > g.rows_cap {
            return false;
        }
        g.rows_outstanding += n;
        true
    }

    fn release_rows(&self, n: usize) {
        let mut g = self.inner.lock();
        g.rows_outstanding = g.rows_outstanding.saturating_sub(n);
    }
}

// ---- events -------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    ToServer,
    ToClient,
}

struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
}

enum EvKind {
    Deliver { conn: u64, dir: Dir, bytes: Vec<u8> },
    Reset { conn: u64 },
}

impl PartialEq for Ev {
    fn eq(&self, other: &Ev) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Ev) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Ev) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Conn {
    peer_ip: [u8; 4],
    open: bool,
    partitioned: bool,
    /// A reset is in flight: new sends are discarded.
    pending_reset: bool,
    faults: FaultPlan,
    sink: Arc<SimSink>,
    /// Protocol version negotiated at `REGISTER` (same state the TCP
    /// server keeps per connection).
    session: Arc<SessionState>,
    inbox: VecDeque<Arrival>,
    /// FIFO floors per direction: a new frame never arrives before one
    /// sent earlier (unless a reorder fault explicitly lets it overtake).
    fifo_to_server: u64,
    fifo_to_client: u64,
    /// Frames held while partitioned, with their would-be arrival times.
    held: Vec<(Dir, u64, Vec<u8>)>,
}

// ---- the world ----------------------------------------------------------

struct Core {
    seed: u64,
    clock: Arc<ManualClock>,
    rng: Rng,
    gate: Arc<FrontDoor>,
    scheduler: Arc<DelayScheduler>,
    registry: Registry,
    heap: BinaryHeap<Reverse<Ev>>,
    next_seq: u64,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
    default_faults: FaultPlan,
    send_queue_rows: usize,
    frames_dropped: u64,
    frames_delivered: u64,
    digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Core {
    fn new(seed: u64, config: SimConfig) -> Core {
        let clock = ManualClock::shared();
        let dyn_clock: Arc<dyn Clock> = Arc::clone(&clock) as Arc<dyn Clock>;
        let db = Arc::new(GuardedDatabase::with_engine_and_clock(
            Engine::new(),
            config.guard,
            Arc::clone(&dyn_clock),
        ));
        let registry = Registry::new();
        let metrics = ServerMetrics::new(&registry);
        let scheduler =
            DelayScheduler::manual(config.tick, metrics.clone(), Arc::clone(&dyn_clock));
        let gate = Arc::new(FrontDoor::new(
            config.gate,
            db,
            Arc::clone(&scheduler),
            dyn_clock,
            metrics,
            registry.clone(),
        ));
        Core {
            seed,
            clock,
            rng: Rng::new(seed),
            gate,
            scheduler,
            registry,
            heap: BinaryHeap::new(),
            next_seq: 0,
            conns: BTreeMap::new(),
            next_conn: 1,
            default_faults: config.faults,
            send_queue_rows: config.send_queue_rows,
            frames_dropped: 0,
            frames_delivered: 0,
            digest: FNV_OFFSET,
        }
    }

    fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    fn connect(&mut self, peer_ip: [u8; 4]) -> u64 {
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(
            id,
            Conn {
                peer_ip,
                open: true,
                partitioned: false,
                pending_reset: false,
                faults: self.default_faults,
                sink: Arc::new(SimSink::new(self.send_queue_rows)),
                session: Arc::new(SessionState::new()),
                inbox: VecDeque::new(),
                fifo_to_server: 0,
                fifo_to_client: 0,
                held: Vec::new(),
            },
        );
        id
    }

    fn push_ev(&mut self, at: u64, kind: EvKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Ev { at, seq, kind }));
    }

    /// Put one frame on the wire in direction `dir`, applying the link's
    /// fault plan. Returns `Err` only for client sends on a dead link.
    fn transmit(&mut self, conn_id: u64, dir: Dir, frame: &Frame) -> Result<(), LinkError> {
        let now = self.now_nanos();
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return Err(LinkError::Closed);
        };
        if !conn.open || conn.pending_reset {
            return match dir {
                Dir::ToServer => Err(LinkError::Closed),
                // Server frames to a dead connection vanish, as on TCP.
                Dir::ToClient => Ok(()),
            };
        }
        let mut bytes = Vec::new();
        write_frame(&mut bytes, frame).expect("frame encodes");
        let f = conn.faults;
        if f.reset_prob > 0.0 && self.rng.chance(f.reset_prob) {
            conn.pending_reset = true;
            let at = now.saturating_add(secs_to_nanos(f.latency_secs));
            self.push_ev(at, EvKind::Reset { conn: conn_id });
            return Ok(());
        }
        if f.drop_prob > 0.0 && self.rng.chance(f.drop_prob) {
            self.frames_dropped += 1;
            return Ok(());
        }
        let mut latency = f.latency_secs;
        if f.jitter_secs > 0.0 {
            latency += self.rng.f64_range(0.0, f.jitter_secs);
        }
        let overtakable = f.reorder_prob > 0.0 && self.rng.chance(f.reorder_prob);
        if overtakable {
            latency += f.reorder_extra_secs;
        }
        let mut at = now.saturating_add(secs_to_nanos(latency));
        let conn = self.conns.get_mut(&conn_id).expect("conn exists");
        if !overtakable {
            let fifo = match dir {
                Dir::ToServer => &mut conn.fifo_to_server,
                Dir::ToClient => &mut conn.fifo_to_client,
            };
            at = at.max(*fifo);
            *fifo = at;
        }
        if conn.partitioned {
            conn.held.push((dir, at, bytes));
        } else {
            self.push_ev(
                at,
                EvKind::Deliver {
                    conn: conn_id,
                    dir,
                    bytes,
                },
            );
        }
        Ok(())
    }

    /// Drain every connection's sink onto the wire, in connection-id
    /// order (deterministic).
    fn route_outboxes(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let frames = {
                let Some(conn) = self.conns.get(&id) else {
                    continue;
                };
                conn.sink.drain()
            };
            for frame in frames {
                let _ = self.transmit(id, Dir::ToClient, &frame);
            }
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev.kind {
            EvKind::Deliver { conn, dir, bytes } => {
                let (open, ip, sink, session) = match self.conns.get(&conn) {
                    Some(c) => (
                        c.open,
                        c.peer_ip,
                        Arc::clone(&c.sink),
                        Arc::clone(&c.session),
                    ),
                    None => return,
                };
                if !open {
                    return;
                }
                let frame = read_frame(&mut bytes.as_slice())
                    .expect("frame decodes")
                    .expect("non-empty frame");
                self.digest = fnv(self.digest, &ev.at.to_le_bytes());
                self.digest = fnv(self.digest, &[dir as u8]);
                self.digest = fnv(self.digest, &conn.to_le_bytes());
                self.digest = fnv(self.digest, &bytes);
                self.frames_delivered += 1;
                match dir {
                    Dir::ToServer => {
                        if self.gate.handle_frame(frame, ip, &session, &sink)
                            == SessionControl::Terminate
                        {
                            if let Some(c) = self.conns.get_mut(&conn) {
                                c.open = false;
                            }
                        }
                    }
                    Dir::ToClient => {
                        if let Some(c) = self.conns.get_mut(&conn) {
                            c.inbox.push_back(Arrival {
                                at_secs: nanos_to_secs(ev.at),
                                frame,
                            });
                        }
                    }
                }
            }
            EvKind::Reset { conn } => {
                self.digest = fnv(self.digest, &ev.at.to_le_bytes());
                self.digest = fnv(self.digest, b"reset");
                self.digest = fnv(self.digest, &conn.to_le_bytes());
                if let Some(c) = self.conns.get_mut(&conn) {
                    c.open = false;
                }
            }
        }
    }

    fn next_wake(&self) -> Option<u64> {
        let ev = self.heap.peek().map(|Reverse(e)| e.at);
        let dl = self.scheduler.next_deadline_nanos();
        match (ev, dl) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Deliver every transport event due at or before now.
    fn deliver_due(&mut self) {
        loop {
            let due = matches!(self.heap.peek(), Some(Reverse(e)) if e.at <= self.now_nanos());
            if !due {
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked");
            self.dispatch(ev);
        }
    }

    /// Advance to the next scheduled thing and process everything due
    /// there. Returns false when nothing is scheduled anywhere.
    fn step(&mut self) -> bool {
        let Some(next) = self.next_wake() else {
            return false;
        };
        self.clock.advance_to_nanos(next);
        // Wheel first: jobs fired now produce frames that enter the wire
        // at this instant.
        self.scheduler.poll();
        self.route_outboxes();
        self.deliver_due();
        self.route_outboxes();
        true
    }

    fn run_for(&mut self, secs: f64) {
        // A positive wait must move time: seconds-to-nanos truncation on
        // a sub-nanosecond wait would otherwise leave the clock exactly
        // where it was, livelocking any caller that retries "just after"
        // an instant the clock cannot quite reach.
        let nanos = match secs_to_nanos(secs) {
            0 if secs > 0.0 => 1,
            n => n,
        };
        let deadline = self.now_nanos().saturating_add(nanos);
        while matches!(self.next_wake(), Some(at) if at <= deadline) {
            self.step();
        }
        self.clock.advance_to_nanos(deadline);
        self.scheduler.poll();
        self.route_outboxes();
        self.deliver_due();
        // Handlers invoked just now may have queued zero-latency replies
        // due at this exact instant; flush them so a bounded wait
        // observes everything that happened strictly within it.
        self.route_outboxes();
        self.deliver_due();
    }

    fn run_until_idle(&mut self) {
        while self.step() {}
    }

    // ---- link operations -------------------------------------------------

    fn client_send(&mut self, conn: u64, frame: &Frame) -> Result<(), LinkError> {
        match self.conns.get(&conn) {
            Some(c) if c.open && !c.pending_reset => {}
            _ => return Err(LinkError::Closed),
        }
        self.transmit(conn, Dir::ToServer, frame)
    }

    fn link_recv(&mut self, conn: u64, max_wait_secs: f64) -> Result<Option<Arrival>, LinkError> {
        let deadline = self
            .now_nanos()
            .saturating_add(secs_to_nanos(max_wait_secs));
        loop {
            if let Some(c) = self.conns.get_mut(&conn) {
                if let Some(arrival) = c.inbox.pop_front() {
                    return Ok(Some(arrival));
                }
                if !c.open {
                    return Err(LinkError::Closed);
                }
            } else {
                return Err(LinkError::Closed);
            }
            match self.next_wake() {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => {
                    self.clock.advance_to_nanos(deadline);
                    self.scheduler.poll();
                    self.route_outboxes();
                    self.deliver_due();
                    self.route_outboxes();
                    self.deliver_due();
                    let empty = self
                        .conns
                        .get_mut(&conn)
                        .map(|c| c.inbox.pop_front())
                        .unwrap_or(None);
                    return Ok(empty);
                }
            }
        }
    }
}

/// The simulated deployment. See the module docs.
pub struct SimWorld {
    core: Rc<RefCell<Core>>,
}

impl SimWorld {
    /// A fresh world from a seed: its own database, scheduler, front
    /// door, clock (at zero) and RNG.
    pub fn new(seed: u64, config: SimConfig) -> SimWorld {
        SimWorld {
            core: Rc::new(RefCell::new(Core::new(seed, config))),
        }
    }

    /// The seed this world was built from.
    pub fn seed(&self) -> u64 {
        self.core.borrow().seed
    }

    /// Virtual seconds since the world's epoch.
    pub fn now_secs(&self) -> f64 {
        self.core.borrow().clock.now_secs()
    }

    /// The guarded database (for DDL/seeding around the wire protocol).
    pub fn db(&self) -> Arc<GuardedDatabase> {
        Arc::clone(self.core.borrow().gate.db())
    }

    /// The front door (drain control, gatekeeper inspection).
    pub fn gate(&self) -> Arc<FrontDoor> {
        Arc::clone(&self.core.borrow().gate)
    }

    /// The metrics registry the front door publishes into.
    pub fn registry(&self) -> Registry {
        self.core.borrow().registry.clone()
    }

    /// Open a mesh connection whose peer address (as the server sees it)
    /// is `peer_ip` — any subnet, no spoofing configuration needed.
    pub fn connect_link(&self, peer_ip: [u8; 4]) -> MeshLink {
        let conn = self.core.borrow_mut().connect(peer_ip);
        MeshLink {
            core: Rc::clone(&self.core),
            conn,
        }
    }

    /// Override the fault plan of one link.
    pub fn set_faults(&self, conn: ConnId, faults: FaultPlan) {
        if let Some(c) = self.core.borrow_mut().conns.get_mut(&conn.0) {
            c.faults = faults;
        }
    }

    /// Partition a link: frames sent in either direction are held.
    pub fn partition(&self, conn: ConnId) {
        if let Some(c) = self.core.borrow_mut().conns.get_mut(&conn.0) {
            c.partitioned = true;
        }
    }

    /// Heal a partition: held frames flood through, in order, no earlier
    /// than now.
    pub fn heal(&self, conn: ConnId) {
        let mut core = self.core.borrow_mut();
        let now = core.now_nanos();
        let held = match core.conns.get_mut(&conn.0) {
            Some(c) => {
                c.partitioned = false;
                std::mem::take(&mut c.held)
            }
            None => return,
        };
        for (dir, at, bytes) in held {
            let at = at.max(now);
            core.push_ev(
                at,
                EvKind::Deliver {
                    conn: conn.0,
                    dir,
                    bytes,
                },
            );
        }
    }

    /// Let `secs` of virtual time pass, processing everything due.
    pub fn run_for(&self, secs: f64) {
        self.core.borrow_mut().run_for(secs);
    }

    /// Run until nothing is scheduled anywhere (wheel empty, wire quiet).
    pub fn run_until_idle(&self) {
        self.core.borrow_mut().run_until_idle();
    }

    /// Process exactly one scheduled instant (the earliest wheel deadline
    /// or frame arrival). Returns false if nothing is scheduled — used by
    /// work-conserving drivers that multiplex many links.
    pub fn step_once(&self) -> bool {
        self.core.borrow_mut().step()
    }

    /// Graceful shutdown, like the TCP server's: refuse new work, then
    /// deliver every in-flight delayed tuple at its deadline.
    pub fn shutdown(&self) {
        self.gate().begin_drain();
        self.run_until_idle();
    }

    /// Order-sensitive FNV-1a hash of every event processed so far
    /// (delivery time, direction, connection, frame bytes): equal digests
    /// mean bit-identical executions.
    pub fn digest(&self) -> u64 {
        self.core.borrow().digest
    }

    /// Frames dropped by fault injection so far.
    pub fn frames_dropped(&self) -> u64 {
        self.core.borrow().frames_dropped
    }

    /// One-line view of everything that could wake the world — for
    /// diagnosing a driver that spins without making progress.
    pub fn debug_snapshot(&self) -> String {
        let core = self.core.borrow();
        let inboxes: Vec<usize> = core.conns.values().map(|c| c.inbox.len()).collect();
        format!(
            "now={}ns heap={} peek={:?} wheel_pending={} wheel_next={:?} inboxes={:?}",
            core.clock.now_nanos(),
            core.heap.len(),
            core.heap.peek().map(|std::cmp::Reverse(e)| e.at),
            core.scheduler.pending(),
            core.scheduler.next_deadline_nanos(),
            inboxes
        )
    }

    /// Frames delivered (in either direction) so far.
    pub fn frames_delivered(&self) -> u64 {
        self.core.borrow().frames_delivered
    }
}

impl SimNet for SimWorld {
    fn connect(&mut self, from_ip: [u8; 4]) -> Result<Box<dyn NetLink>, LinkError> {
        Ok(Box::new(self.connect_link(from_ip)))
    }

    fn wait(&mut self, secs: f64) {
        self.run_for(secs);
    }

    fn now_secs(&self) -> f64 {
        SimWorld::now_secs(self)
    }
}

/// A client's end of a mesh connection.
pub struct MeshLink {
    core: Rc<RefCell<Core>>,
    conn: u64,
}

impl MeshLink {
    /// This link's connection id (for [`SimWorld::set_faults`],
    /// [`SimWorld::partition`], ...).
    pub fn id(&self) -> ConnId {
        ConnId(self.conn)
    }
}

impl NetLink for MeshLink {
    fn send(&mut self, frame: &Frame) -> Result<(), LinkError> {
        self.core.borrow_mut().client_send(self.conn, frame)
    }

    fn recv(&mut self, max_wait_secs: f64) -> Result<Option<Arrival>, LinkError> {
        self.core.borrow_mut().link_recv(self.conn, max_wait_secs)
    }

    fn now_secs(&self) -> f64 {
        self.core.borrow().clock.now_secs()
    }

    fn is_open(&self) -> bool {
        self.core
            .borrow()
            .conns
            .get(&self.conn)
            .is_some_and(|c| c.open)
    }
}
