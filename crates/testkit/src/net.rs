//! The transport seam: one client-side interface, two transports.
//!
//! [`NetLink`] is a client's connection to a delayguard server —
//! send a [`Frame`], receive frames with a timeout, read the transport's
//! clock. [`SimNet`] hands out links and can wait. Two implementations:
//!
//! * the in-memory mesh of [`crate::world::SimWorld`], where "waiting"
//!   advances the virtual clock to the next scheduled event and a seeded
//!   [`FaultPlan`] injects latency, drops, reordering, resets and
//!   partitions per link;
//! * [`TcpNet`], real sockets against a real
//!   [`Server`](delayguard_server::server), where waiting is wall-clock
//!   sleeping.
//!
//! Generic helpers ([`register_until_admitted`], [`run_query`]) are
//! written against the traits only, so the transport-parity test can
//! drive the same scenario through both and compare outcomes — what the
//! simulation proves is then a property of the deployed wire protocol,
//! not of a sim-only shim.

use delayguard_core::clock::{Clock, RealClock};
use delayguard_server::gate::MutationVerb;
use delayguard_server::protocol::{read_frame, write_frame, Frame, RefuseReason, PROTOCOL_VERSION};
use delayguard_storage::Row;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Why a link operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The connection is closed (reset, terminated, or shut down).
    Closed,
    /// The transport failed in some other way (TCP errors).
    Transport(String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Closed => write!(f, "link closed"),
            LinkError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for LinkError {}

/// A frame plus the transport-clock time it arrived at the client.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Seconds on the transport's clock (virtual for the mesh, wall for
    /// TCP) when the frame reached the client.
    pub at_secs: f64,
    /// The decoded frame.
    pub frame: Frame,
}

/// A client's connection to the server, over either transport.
pub trait NetLink {
    /// Send one frame to the server.
    fn send(&mut self, frame: &Frame) -> Result<(), LinkError>;

    /// Receive the next frame, waiting up to `max_wait_secs` of
    /// transport time. `Ok(None)` means the wait elapsed with nothing to
    /// deliver. On the mesh, waiting advances the virtual clock.
    fn recv(&mut self, max_wait_secs: f64) -> Result<Option<Arrival>, LinkError>;

    /// Seconds on the transport's clock.
    fn now_secs(&self) -> f64;

    /// Whether the link is still open.
    fn is_open(&self) -> bool;
}

/// A network that hands out links: the simulated mesh or real TCP.
pub trait SimNet {
    /// Open a connection. `from_ip` is the client's address: the mesh
    /// uses it as the peer address the server sees (any subnet, no
    /// spoofing config needed); TCP ignores it (the kernel assigns
    /// loopback, so multi-subnet TCP tests pair `Register { claimed_ip }`
    /// with `trust_client_ip`).
    fn connect(&mut self, from_ip: [u8; 4]) -> Result<Box<dyn NetLink>, LinkError>;

    /// Let `secs` of transport time pass.
    fn wait(&mut self, secs: f64);

    /// Seconds on the transport's clock.
    fn now_secs(&self) -> f64;
}

// ---- fault model --------------------------------------------------------

/// Seeded per-link fault injection, sampled by the mesh from the world's
/// RNG on every frame send (both directions share the link's plan).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Base one-way latency, seconds.
    pub latency_secs: f64,
    /// Uniform extra latency in `[0, jitter_secs)`, sampled per frame.
    pub jitter_secs: f64,
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a frame is delivered late enough for later sends to
    /// overtake it (FIFO is enforced for all other frames).
    pub reorder_prob: f64,
    /// Extra delay added to a reordered frame.
    pub reorder_extra_secs: f64,
    /// Probability a send triggers a connection reset instead of a
    /// delivery; the peer observes the link closing.
    pub reset_prob: f64,
}

impl FaultPlan {
    /// A perfect link: instant, lossless, ordered.
    pub fn ideal() -> FaultPlan {
        FaultPlan {
            latency_secs: 0.0,
            jitter_secs: 0.0,
            drop_prob: 0.0,
            reorder_prob: 0.0,
            reorder_extra_secs: 0.0,
            reset_prob: 0.0,
        }
    }

    /// A plausible WAN link: latency and jitter, no loss.
    pub fn wan() -> FaultPlan {
        FaultPlan {
            latency_secs: 0.040,
            jitter_secs: 0.020,
            ..FaultPlan::ideal()
        }
    }

    /// Override the loss probability.
    pub fn with_drops(mut self, p: f64) -> FaultPlan {
        self.drop_prob = p;
        self
    }

    /// Override the reorder probability and the extra delay a reordered
    /// frame suffers.
    pub fn with_reordering(mut self, p: f64, extra_secs: f64) -> FaultPlan {
        self.reorder_prob = p;
        self.reorder_extra_secs = extra_secs;
        self
    }

    /// Override the reset probability.
    pub fn with_resets(mut self, p: f64) -> FaultPlan {
        self.reset_prob = p;
        self
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::ideal()
    }
}

// ---- real TCP -----------------------------------------------------------

/// The TCP implementation of [`SimNet`]: real sockets against a real
/// server. Used by the transport-parity test; campaigns run on the mesh.
pub struct TcpNet {
    addr: String,
    clock: Arc<RealClock>,
}

impl TcpNet {
    /// A network dialing `addr` (e.g. the `local_addr` of a started
    /// server).
    pub fn new(addr: impl Into<String>) -> TcpNet {
        TcpNet {
            addr: addr.into(),
            clock: Arc::new(RealClock::new()),
        }
    }
}

impl SimNet for TcpNet {
    fn connect(&mut self, _from_ip: [u8; 4]) -> Result<Box<dyn NetLink>, LinkError> {
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| LinkError::Transport(e.to_string()))?;
        let reader = stream
            .try_clone()
            .map_err(|e| LinkError::Transport(e.to_string()))?;
        let clock = Arc::clone(&self.clock);
        let (tx, rx) = mpsc::channel();
        // A blocking reader thread per link: `read_frame` must never see
        // a mid-frame read timeout (it would lose sync), so timeouts live
        // on the channel, not the socket.
        std::thread::Builder::new()
            .name("testkit-tcp-reader".into())
            .spawn(move || {
                let mut reader = reader;
                while let Ok(Some(frame)) = read_frame(&mut reader) {
                    if tx.send((clock.now_secs(), frame)).is_err() {
                        break;
                    }
                }
            })
            .map_err(|e| LinkError::Transport(e.to_string()))?;
        Ok(Box::new(TcpLink {
            stream,
            rx,
            clock: Arc::clone(&self.clock),
            open: true,
        }))
    }

    fn wait(&mut self, secs: f64) {
        if secs > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(secs));
        }
    }

    fn now_secs(&self) -> f64 {
        self.clock.now_secs()
    }
}

/// One TCP connection; see [`TcpNet`].
pub struct TcpLink {
    stream: TcpStream,
    rx: mpsc::Receiver<(f64, Frame)>,
    clock: Arc<RealClock>,
    open: bool,
}

impl NetLink for TcpLink {
    fn send(&mut self, frame: &Frame) -> Result<(), LinkError> {
        if !self.open {
            return Err(LinkError::Closed);
        }
        write_frame(&mut self.stream, frame).map_err(|e| LinkError::Transport(e.to_string()))?;
        self.stream
            .flush()
            .map_err(|e| LinkError::Transport(e.to_string()))
    }

    fn recv(&mut self, max_wait_secs: f64) -> Result<Option<Arrival>, LinkError> {
        match self
            .rx
            .recv_timeout(Duration::from_secs_f64(max_wait_secs.max(0.0)))
        {
            Ok((at_secs, frame)) => Ok(Some(Arrival { at_secs, frame })),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.open = false;
                Err(LinkError::Closed)
            }
        }
    }

    fn now_secs(&self) -> f64 {
        self.clock.now_secs()
    }

    fn is_open(&self) -> bool {
        self.open
    }
}

impl Drop for TcpLink {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

// ---- generic client drivers ---------------------------------------------

/// The complete outcome of one query as observed on the wire.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The query streamed rows and completed.
    Rows {
        /// Column names from `ROWS_BEGIN`.
        columns: Vec<String>,
        /// Row count announced by `ROWS_BEGIN`.
        announced: u32,
        /// `(seq, row)` in *arrival* order (reordering faults show here).
        rows: Vec<(u32, Row)>,
        /// Arrival time of each row, parallel to `rows`.
        row_arrivals: Vec<f64>,
        /// Total delay charged, from `DONE`.
        delay_secs: f64,
        /// Tuples charged, from `DONE`.
        tuples: u32,
        /// When the query was sent / when `DONE` arrived.
        sent_at_secs: f64,
        done_at_secs: f64,
    },
    /// The server refused the query.
    Refused {
        reason: RefuseReason,
        retry_after_secs: f64,
    },
    /// The statement failed.
    Error { message: String },
    /// No terminal frame arrived within the timeout.
    TimedOut,
}

impl QueryOutcome {
    /// Rows sorted by sequence number (the logical result set,
    /// regardless of arrival order).
    pub fn rows_in_seq_order(&self) -> Vec<Row> {
        match self {
            QueryOutcome::Rows { rows, .. } => {
                let mut sorted: Vec<_> = rows.clone();
                sorted.sort_by_key(|(seq, _)| *seq);
                sorted.into_iter().map(|(_, r)| r).collect()
            }
            _ => Vec::new(),
        }
    }

    /// The refusal retry hint, if this is a refusal.
    pub fn retry_hint(&self) -> Option<f64> {
        match self {
            QueryOutcome::Refused {
                retry_after_secs, ..
            } => Some(*retry_after_secs),
            _ => None,
        }
    }
}

/// The complete outcome of one mutation as observed on the wire.
#[derive(Debug, Clone)]
pub enum MutationOutcome {
    /// The write was applied.
    Mutated {
        /// Rows affected, from `MUTATED`.
        rows: u32,
        /// The table's data version after the write, from `MUTATED`.
        data_version: u64,
        /// When the mutation was sent / when `MUTATED` arrived.
        sent_at_secs: f64,
        done_at_secs: f64,
    },
    /// The server refused the mutation (admission, backpressure, or a
    /// v1 session hitting `WritesUnsupported`).
    Refused {
        reason: RefuseReason,
        retry_after_secs: f64,
    },
    /// The statement failed.
    Error { message: String },
    /// No terminal frame arrived within the timeout.
    TimedOut,
}

impl MutationOutcome {
    /// The rows affected, or `None` for any non-applied outcome.
    pub fn rows(&self) -> Option<u32> {
        match self {
            MutationOutcome::Mutated { rows, .. } => Some(*rows),
            _ => None,
        }
    }
}

/// Send one `REGISTER` (negotiating the current protocol version) and
/// wait for the verdict.
pub fn register_once(
    link: &mut dyn NetLink,
    claimed_ip: [u8; 4],
    timeout_secs: f64,
) -> Result<Result<u64, f64>, LinkError> {
    register_once_with_version(link, claimed_ip, PROTOCOL_VERSION, timeout_secs)
}

/// [`register_once`] pinning an explicit protocol version — version 1
/// keeps legacy count-up-front framing for compatibility tests.
pub fn register_once_with_version(
    link: &mut dyn NetLink,
    claimed_ip: [u8; 4],
    version: u8,
    timeout_secs: f64,
) -> Result<Result<u64, f64>, LinkError> {
    link.send(&Frame::Register {
        claimed_ip,
        version,
    })?;
    let deadline = link.now_secs() + timeout_secs;
    loop {
        let remaining = deadline - link.now_secs();
        if remaining <= 0.0 {
            return Err(LinkError::Transport("registration timed out".into()));
        }
        match link.recv(remaining)? {
            Some(Arrival {
                frame: Frame::Registered { user, .. },
                ..
            }) => return Ok(Ok(user)),
            Some(Arrival {
                frame: Frame::Refused {
                    retry_after_secs, ..
                },
                ..
            }) => return Ok(Err(retry_after_secs)),
            Some(_) => continue, // stray frame from an earlier query
            None => return Err(LinkError::Transport("registration timed out".into())),
        }
    }
}

/// Register, honoring `RegistrationTooSoon` retry hints until admitted.
/// Returns the user id and the number of refusals absorbed.
pub fn register_until_admitted(
    net: &mut dyn SimNet,
    link: &mut dyn NetLink,
    claimed_ip: [u8; 4],
    timeout_secs: f64,
) -> Result<(u64, u64), LinkError> {
    let mut refusals = 0;
    loop {
        match register_once(link, claimed_ip, timeout_secs)? {
            Ok(user) => return Ok((user, refusals)),
            Err(retry_after) => {
                refusals += 1;
                // A hair past the hint: the hint itself is exact, but the
                // transport clock quantizes to nanoseconds.
                net.wait(retry_after + 1e-6);
            }
        }
    }
}

/// Run one mutation to its terminal frame (`MUTATED`, `REFUSED`,
/// `ERROR`) or the timeout. The verb selects which request frame is
/// sent; the server cross-checks it against the parsed statement.
pub fn run_mutation(
    link: &mut dyn NetLink,
    query_id: u32,
    user: u64,
    verb: MutationVerb,
    sql: &str,
    timeout_secs: f64,
) -> Result<MutationOutcome, LinkError> {
    let sent_at_secs = link.now_secs();
    let sql = sql.to_owned();
    link.send(&match verb {
        MutationVerb::Insert => Frame::Insert {
            query_id,
            user,
            sql,
        },
        MutationVerb::Update => Frame::Update {
            query_id,
            user,
            sql,
        },
        MutationVerb::Delete => Frame::Delete {
            query_id,
            user,
            sql,
        },
    })?;
    let deadline = sent_at_secs + timeout_secs;
    loop {
        let remaining = deadline - link.now_secs();
        if remaining <= 0.0 {
            return Ok(MutationOutcome::TimedOut);
        }
        let Some(arrival) = link.recv(remaining)? else {
            return Ok(MutationOutcome::TimedOut);
        };
        match arrival.frame {
            Frame::Mutated {
                query_id: qid,
                rows,
                data_version,
            } if qid == query_id => {
                return Ok(MutationOutcome::Mutated {
                    rows,
                    data_version,
                    sent_at_secs,
                    done_at_secs: arrival.at_secs,
                });
            }
            Frame::Refused {
                query_id: qid,
                reason,
                retry_after_secs,
            } if qid == query_id || qid == 0 => {
                return Ok(MutationOutcome::Refused {
                    reason,
                    retry_after_secs,
                });
            }
            Frame::Error {
                query_id: qid,
                message,
            } if qid == query_id => return Ok(MutationOutcome::Error { message }),
            _ => continue, // frames for other query ids
        }
    }
}

/// Run one query to its terminal frame (`DONE`, `REFUSED`, `ERROR`) or
/// the timeout, collecting every row with its arrival time.
pub fn run_query(
    link: &mut dyn NetLink,
    query_id: u32,
    user: u64,
    sql: &str,
    timeout_secs: f64,
) -> Result<QueryOutcome, LinkError> {
    let sent_at_secs = link.now_secs();
    link.send(&Frame::Query {
        query_id,
        user,
        sql: sql.to_owned(),
    })?;
    let deadline = sent_at_secs + timeout_secs;
    let mut columns = Vec::new();
    let mut announced = 0;
    let mut rows = Vec::new();
    let mut row_arrivals = Vec::new();
    loop {
        let remaining = deadline - link.now_secs();
        if remaining <= 0.0 {
            return Ok(QueryOutcome::TimedOut);
        }
        let Some(arrival) = link.recv(remaining)? else {
            return Ok(QueryOutcome::TimedOut);
        };
        match arrival.frame {
            Frame::RowsBegin {
                query_id: qid,
                columns: cols,
                rows: n,
            } if qid == query_id => {
                columns = cols;
                announced = n;
            }
            Frame::Row {
                query_id: qid,
                seq,
                row,
            } if qid == query_id => {
                rows.push((seq, row));
                row_arrivals.push(arrival.at_secs);
            }
            // Trailer framing: the real count supersedes the
            // ROWS_UNKNOWN sentinel announced at ROWS_BEGIN.
            Frame::RowsEnd {
                query_id: qid,
                rows: n,
            } if qid == query_id => {
                announced = n;
            }
            Frame::Done {
                query_id: qid,
                delay_secs,
                tuples,
            } if qid == query_id => {
                return Ok(QueryOutcome::Rows {
                    columns,
                    announced,
                    rows,
                    row_arrivals,
                    delay_secs,
                    tuples,
                    sent_at_secs,
                    done_at_secs: arrival.at_secs,
                });
            }
            Frame::Refused {
                query_id: qid,
                reason,
                retry_after_secs,
            } if qid == query_id || qid == 0 => {
                return Ok(QueryOutcome::Refused {
                    reason,
                    retry_after_secs,
                });
            }
            Frame::Error {
                query_id: qid,
                message,
            } if qid == query_id => return Ok(QueryOutcome::Error { message }),
            _ => continue, // frames for other query ids
        }
    }
}
