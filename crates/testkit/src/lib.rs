//! # delayguard-testkit
//!
//! Deterministic simulation testing for the whole front door.
//!
//! The testkit runs the **real** server stack — the wire codec
//! ([`delayguard_server::protocol`]), the gatekeeper, the
//! [`FrontDoor`](delayguard_server::gate::FrontDoor), the
//! [`DelayScheduler`](delayguard_server::scheduler::DelayScheduler) and
//! its timer wheel, and the
//! [`GuardedDatabase`](delayguard_core::GuardedDatabase) snapshot path —
//! on a virtual clock and an in-memory transport, with every source of
//! nondeterminism (latency, drops, partitions, resets, reordering,
//! workload sampling) driven by one seed:
//!
//! * [`world::SimWorld`] — the simulated deployment: clients connect over
//!   an in-memory channel mesh, frames travel through the real codec,
//!   time advances only to the next scheduled thing (a wheel deadline or
//!   a frame arrival), and months of simulated delay cost milliseconds of
//!   wall clock.
//! * [`net`] — the transport seam: [`net::SimNet`] / [`net::NetLink`]
//!   are implemented by both the in-memory mesh and real TCP
//!   ([`net::TcpNet`]), so the same generic client code drives either;
//!   [`net::FaultPlan`] is the seeded per-link fault model.
//! * [`campaign`] — §2.4 adversary campaigns in virtual time: sequential
//!   crawlers, Sybil swarms racing the registration interval, subnet
//!   swarms, popularity-aware crawlers — with closed-form expectations
//!   from [`delayguard_core::analysis`] (Eq. 4) to assert against.
//! * [`seed`] — the replay harness: every failing test prints its seed
//!   and a `TESTKIT_REPLAY=<seed>` command that reruns the exact
//!   execution; [`world::SimWorld::digest`] folds every delivered frame
//!   (with its delivery time) into an order-sensitive hash, so
//!   bit-identical reruns are checkable with one comparison.
//!
//! Determinism holds because the simulation is single-threaded and every
//! component reads time through the injected
//! [`Clock`](delayguard_core::clock::Clock): the complete execution is a
//! pure function of (seed, script). The repo lint
//! (`cargo run -p xtask -- lint`) keeps wall-clock reads off the
//! simulated path; this crate itself may read the wall only to *budget*
//! tests (asserting that simulated months finish in wall seconds).

#![forbid(unsafe_code)]

pub mod campaign;
pub mod net;
pub mod seed;
pub mod staleness;
pub mod world;

pub use campaign::{
    kendall_tau, tail_recall, theil_sen_slope, AdaptiveReport, Campaign, CampaignParams,
    CrawlReport, Observation, ObservationReport, RankInferenceReport, SybilReport,
};
pub use net::{
    Arrival, FaultPlan, LinkError, MutationOutcome, NetLink, QueryOutcome, SimNet, TcpNet,
};
pub use seed::{check, check_in, check_seeds, check_seeds_in, replay_seed};
pub use staleness::{StalenessCampaign, StalenessParams, StalenessReport};
pub use world::{ConnId, SimConfig, SimWorld};
