//! §2.4 adversary campaigns in virtual time.
//!
//! A [`Campaign`] is a simulated deployment seeded as the paper's
//! running example: a directory of `n` tuples whose popularity follows a
//! Zipf distribution with exponent α, warmed into the tracker in bulk
//! (so `fmax` and the rank order are known in closed form), guarded by
//! the access-rate delay policy `d(i) = i^(α+β) / (n·fmax)`.
//!
//! The drivers replay the paper's attacks end to end over the wire —
//! registration, refusal hints, per-tuple delay enforcement — and return
//! reports whose numbers can be asserted against
//! [`delayguard_core::analysis`] (Eq. 4 and the Sybil economics):
//!
//! * [`Campaign::sequential_crawl`] — one identity walks a rank list;
//!   months of simulated delay, seconds of wall clock.
//! * [`Campaign::swarm_crawl`] — k identities crawl stripes of the rank
//!   space concurrently (work-conserving, virtual-time parallel); with
//!   [`Campaign::sybil_ips`] this is the Sybil attack racing the
//!   registration interval, with [`Campaign::clustered_ips`] it is the
//!   same swarm collapsed onto one /24 for the subnet aggregation
//!   defense.
//! * [`Campaign::zipf_ranks`] — a popularity-aware workload (the
//!   *user*'s side of Eq. 4, or a smart crawler that goes for the
//!   popular head first).
//! * [`Campaign::rank_inference_crawl`] / [`Campaign::adaptive_probe_attack`]
//!   — the timing side-channel adversaries: one sorts tuples by observed
//!   response time to recover the popularity rank order (scored by
//!   Kendall tau and tail recall), the other probes a small sample to
//!   fit the delay-vs-rank curve and then aims its budget at the
//!   slow-looking (actually high-value) tail. Run them against a
//!   [`CampaignParams::sidechannel`] world with shaping off (control)
//!   and on (defended) to measure the crossover.

use crate::net::{self, NetLink, QueryOutcome};
use crate::world::{MeshLink, SimConfig, SimWorld};
use delayguard_core::access::{AccessDelayPolicy, FmaxMode};
use delayguard_core::analysis;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::policy::GuardPolicy;
use delayguard_core::shaping::DelayShaping;
use delayguard_core::GuardConfig;
use delayguard_query::StatementOutput;
use delayguard_server::gate::GateConfig;
use delayguard_server::protocol::Frame;
use delayguard_storage::RowId;
use delayguard_workload::{generalized_harmonic, Rng, Zipf};
use std::time::Duration;

/// Per-attempt timeout for a registration exchange (virtual seconds).
const REGISTER_TIMEOUT_SECS: f64 = 600.0;

/// Timeout for a single query: must exceed the largest per-tuple delay a
/// campaign can be charged (rank n at n²-ish seconds).
const QUERY_TIMEOUT_SECS: f64 = 50.0 * 86_400.0;

/// The paper's running example, parameterized.
#[derive(Debug, Clone)]
pub struct CampaignParams {
    /// Database size (tuples), ranked 1 (most popular) to `n`.
    pub n: u64,
    /// Zipf exponent of the seeded popularity distribution.
    pub alpha: f64,
    /// Delay-policy exponent: `d(i) ∝ i^(α+β)`.
    pub beta: f64,
    /// Per-tuple delay cap; `f64::INFINITY` is the uncapped §2.1 policy.
    pub cap_secs: f64,
    /// Access count of the rank-1 tuple when the campaign starts
    /// (`c_i = seed_scale · i^(−α)`). Large values make the crawl's own
    /// accesses a negligible perturbation of `fmax`.
    pub seed_scale: f64,
    /// Gatekeeper configuration (defaults to wide-open so the delay
    /// policy is the only brake; override for Sybil / subnet scenarios).
    pub gatekeeper: GatekeeperConfig,
    /// Timer-wheel tick. Campaign delays are seconds-to-hours, so a
    /// coarse tick keeps the event count proportional to queries.
    pub tick: Duration,
    /// Per-connection send-queue row cap.
    pub send_queue_rows: usize,
    /// Timing side-channel defense. Off by default so every pre-existing
    /// campaign reproduces bit-for-bit; [`Campaign::new`] folds the world
    /// seed into the jitter seed when enabled, so `TESTKIT_REPLAY`
    /// replays the exact shaped schedule too.
    pub shaping: DelayShaping,
}

impl CampaignParams {
    /// The timing side-channel world: a full-database timing sweep per
    /// test (`n = 1024` — large enough that within-bucket Kendall-τ
    /// noise, ~2/(3√n), stays well under the collapse bound), α = β = 1,
    /// a finite cap *above* the rank-`n` delay (so the unshaped control
    /// leaks every rank — no cap ties), a 200 ms wheel tick (observed
    /// times resolve individual ranks), and — when `shaped` — a geometry
    /// with edges at 8 ms / 8 s / 8000 s (γ = 1000): the ~33 hottest
    /// ranks land in the fast buckets (the median rank, ≈ 24, among
    /// them, so honest Eq. 3 costs stay bounded) and the other ~991
    /// share the slow bucket, with 10% multiplicative jitter on top.
    pub fn sidechannel(shaped: bool) -> CampaignParams {
        CampaignParams {
            n: 1024,
            alpha: 1.0,
            beta: 1.0,
            cap_secs: 8000.0,
            tick: Duration::from_millis(200),
            shaping: if shaped {
                DelayShaping::new(8000.0, 1000.0, 0.1, 0x51DE_C4A7)
            } else {
                DelayShaping::off()
            },
            // Deep-tail seeded counts must differ by ≫ 1 (the gap is
            // `seed_scale/i²` ≈ 950 at rank 1024) or the campaign's own
            // unit accesses reorder adjacent ranks mid-sweep and blur
            // the very channel under test.
            seed_scale: 1e9,
            ..CampaignParams::default()
        }
    }
}

impl Default for CampaignParams {
    fn default() -> CampaignParams {
        CampaignParams {
            n: 1100,
            alpha: 1.0,
            beta: 1.0,
            cap_secs: f64::INFINITY,
            seed_scale: 1e6,
            gatekeeper: GatekeeperConfig {
                per_user_rate: 1e9,
                per_user_burst: 1e9,
                per_subnet_rate: 1e9,
                per_subnet_burst: 1e9,
                registration: RegistrationPolicy::interval(0.0),
                storefront_query_threshold: 0,
            },
            tick: Duration::from_secs(1),
            send_queue_rows: 4096,
            shaping: DelayShaping::off(),
        }
    }
}

/// What one crawling identity observed.
#[derive(Debug, Clone)]
pub struct CrawlReport {
    /// Queries answered with rows.
    pub queries: u64,
    /// Refusals absorbed (each followed by honoring the retry hint).
    pub refused: u64,
    /// Tuples charged across all answered queries.
    pub tuples: u64,
    /// Sum of charged delays (the server's `DONE` accounting).
    pub total_delay_secs: f64,
    /// Virtual time when the crawl started (before registration).
    pub started_secs: f64,
    /// Virtual time when the last `DONE` arrived.
    pub finished_secs: f64,
    /// Minimum over all queries of `(done − sent) − charged delay`:
    /// negative means some tuple was released early.
    pub min_margin_secs: f64,
}

impl CrawlReport {
    /// End-to-end campaign wall time in virtual seconds.
    pub fn wall_secs(&self) -> f64 {
        self.finished_secs - self.started_secs
    }
}

/// What a k-identity swarm observed.
#[derive(Debug, Clone)]
pub struct SybilReport {
    /// Identities that completed registration.
    pub identities: u64,
    /// `RegistrationTooSoon` refusals absorbed while registering.
    pub registration_refusals: u64,
    /// Virtual time when the swarm started registering.
    pub started_secs: f64,
    /// Virtual time when the last identity was admitted.
    pub registration_done_secs: f64,
    /// Virtual time when the last stripe finished.
    pub finished_secs: f64,
    /// Sum of charged delays across the whole swarm.
    pub total_delay_secs: f64,
    /// Tuples charged across the whole swarm.
    pub tuples: u64,
    /// Query refusals absorbed during the crawl.
    pub refused_queries: u64,
    /// Minimum never-early margin across every query (see
    /// [`CrawlReport::min_margin_secs`]).
    pub min_margin_secs: f64,
}

impl SybilReport {
    /// End-to-end campaign wall time (registration + crawl).
    pub fn wall_secs(&self) -> f64 {
        self.finished_secs - self.started_secs
    }

    /// Time spent serially registering the swarm.
    pub fn registration_wall_secs(&self) -> f64 {
        self.registration_done_secs - self.started_secs
    }
}

/// One timed query: the true popularity rank it touched, what the server
/// *charged* (its own `DONE` accounting) and what the client *observed*
/// (`DONE` arrival minus send — the only signal a timing adversary has).
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// True popularity rank of the queried tuple (1 = most popular).
    pub rank: u64,
    /// Server-accounted delay, in seconds (the economics signal).
    pub charged_secs: f64,
    /// Client-observed response time, in seconds (the attack signal).
    pub observed_secs: f64,
}

/// A crawl that kept per-query timing observations.
#[derive(Debug, Clone)]
pub struct ObservationReport {
    /// One entry per answered query, in issue order.
    pub observations: Vec<Observation>,
    /// Refusals absorbed (each followed by honoring the retry hint).
    pub refused: u64,
    /// Sum of charged delays across all answered queries.
    pub total_charged_secs: f64,
    /// Minimum over all queries of `observed − charged`: negative means
    /// some tuple was released early.
    pub min_margin_secs: f64,
}

impl ObservationReport {
    /// Median of the charged per-query delays (the honest-user cost
    /// statistic Eq. 3 speaks about).
    pub fn median_charged_secs(&self) -> f64 {
        assert!(!self.observations.is_empty());
        let mut d: Vec<f64> = self.observations.iter().map(|o| o.charged_secs).collect();
        d.sort_by(|a, b| a.partial_cmp(b).expect("finite delays"));
        d[d.len() / 2]
    }
}

/// What the rank-inference crawler recovered.
#[derive(Debug, Clone)]
pub struct RankInferenceReport {
    /// The timing sweep, one observation per rank (shuffled issue order).
    pub sweep: ObservationReport,
    /// Kendall tau-a between true rank order and observed response time:
    /// 1.0 = the timing channel leaks the full rank order, ~0 = chance.
    pub tau: f64,
    /// Fraction of the true `k` least-popular (highest-value) tuples the
    /// attacker finds among its `k` slowest-observed — its ability to aim
    /// extraction at the tail.
    pub tail_recall: f64,
    /// The `k` used for [`RankInferenceReport::tail_recall`].
    pub tail_k: usize,
}

/// What the adaptive (probe-then-target) attacker achieved.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Least-squares slope of `ln(observed)` vs `ln(assumed rank)` over
    /// the probe set: against the unshaped policy this recovers `α + β`.
    pub fitted_exponent: f64,
    /// Ranks probed in the fitting phase.
    pub probe_count: usize,
    /// Of the `k` tuples the attacker targets (slowest-observed in its
    /// full sweep), the fraction that truly belong to the value tail.
    pub tail_capture: f64,
    /// The targeting sweep (for economics accounting).
    pub sweep: ObservationReport,
}

/// Kendall tau-a between true rank and observed time over all pairs:
/// `Σ sign(Δrank)·sign(Δobserved) / C(n,2)`. Ties in either coordinate
/// contribute 0 — deterministically, with no tie-breaking heuristics to
/// smuggle rank information back in. O(n²), fine at campaign sizes.
pub fn kendall_tau(obs: &[Observation]) -> f64 {
    let n = obs.len();
    assert!(n >= 2, "tau needs at least two observations");
    let mut s: i64 = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let dr = (obs[j].rank as i64 - obs[i].rank as i64).signum();
            let dt = match obs[j]
                .observed_secs
                .partial_cmp(&obs[i].observed_secs)
                .expect("finite observations")
            {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
            s += dr * dt;
        }
    }
    s as f64 / (n as f64 * (n - 1) as f64 / 2.0)
}

/// Tail recall: sort observations by observed time (stable, so ties keep
/// the — shuffled — issue order and cannot leak rank), take the `k`
/// slowest as the attacker's predicted value-tail, and score the overlap
/// with the true `k` largest ranks present in the sweep.
pub fn tail_recall(obs: &[Observation], k: usize) -> f64 {
    assert!(k >= 1 && k <= obs.len());
    let mut by_time: Vec<&Observation> = obs.iter().collect();
    by_time.sort_by(|a, b| {
        b.observed_secs
            .partial_cmp(&a.observed_secs)
            .expect("finite observations")
    });
    let mut ranks: Vec<u64> = obs.iter().map(|o| o.rank).collect();
    ranks.sort_unstable();
    let cutoff = ranks[ranks.len() - k];
    let hit = by_time[..k].iter().filter(|o| o.rank >= cutoff).count();
    hit as f64 / k as f64
}

/// Theil–Sen slope through `(x, y)` points — the adaptive attacker's
/// estimate of the policy exponent from a log-log fit. The median of all
/// pairwise slopes shrugs off the heavy log-scale noise in the smallest
/// rank order statistics that wrecks an ordinary least-squares fit.
pub fn theil_sen_slope(pts: &[(f64, f64)]) -> f64 {
    assert!(pts.len() >= 2, "slope needs at least two points");
    let mut slopes = Vec::with_capacity(pts.len() * (pts.len() - 1) / 2);
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            let (dx, dy) = (pts[j].0 - pts[i].0, pts[j].1 - pts[i].1);
            if dx != 0.0 {
                slopes.push(dy / dx);
            }
        }
    }
    slopes.sort_by(|a, b| a.partial_cmp(b).expect("finite slopes"));
    slopes[slopes.len() / 2]
}

/// A simulated deployment seeded as the paper's running example.
pub struct Campaign {
    world: SimWorld,
    params: CampaignParams,
    rids: Vec<RowId>,
    rng: Rng,
    next_query_id: u32,
}

impl Campaign {
    /// Build the world, create and populate the directory table, and
    /// warm the popularity tracker with `c_i = seed_scale · i^(−α)`
    /// accesses per rank — all at virtual time zero, before any client
    /// connects. Rank `i` is the row with `id = i − 1`.
    pub fn new(seed: u64, params: CampaignParams) -> Campaign {
        let policy = AccessDelayPolicy::new(params.alpha, params.beta)
            .with_cap(params.cap_secs)
            .with_fmax_mode(FmaxMode::DecayedTotal);
        // Fold the world seed into the jitter seed so different campaign
        // seeds exercise different jitter draws while one seed replays
        // bit-identically.
        let mut shaping = params.shaping;
        if shaping.enabled {
            shaping.seed ^= seed;
        }
        let guard = GuardConfig::paper_default()
            .with_policy(GuardPolicy::AccessRate(policy))
            .with_shaping(shaping);
        let gate = GateConfig {
            gatekeeper: params.gatekeeper,
            ..GateConfig::default()
        };
        let world = SimWorld::new(
            seed,
            SimConfig {
                guard,
                gate,
                tick: params.tick,
                send_queue_rows: params.send_queue_rows,
                faults: crate::net::FaultPlan::ideal(),
            },
        );
        let db = world.db();
        db.execute_at(
            "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
            0.0,
        )
        .expect("create table");
        db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
            .expect("create index");
        let mut rids = Vec::with_capacity(params.n as usize);
        for rank in 1..=params.n {
            let id = rank - 1;
            let resp = db
                .execute_at(
                    &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
                    0.0,
                )
                .expect("insert row");
            match resp.output {
                StatementOutput::Inserted { rids: mut r } => {
                    rids.push(r.pop().expect("one rid per insert"))
                }
                other => panic!("unexpected insert output: {other:?}"),
            }
        }
        let counts: Vec<(RowId, f64)> = rids
            .iter()
            .enumerate()
            .map(|(i, &rid)| {
                let rank = (i + 1) as f64;
                (rid, params.seed_scale * rank.powf(-params.alpha))
            })
            .collect();
        db.warm_accesses("directory", &counts, 0.0);
        Campaign {
            world,
            // Independent stream from the world's fault RNG.
            rng: Rng::new(seed ^ 0x9e37_79b9_7f4a_7c15),
            params,
            rids,
            next_query_id: 1,
        }
    }

    /// The underlying world (digest, metrics, fault control).
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// The campaign parameters.
    pub fn params(&self) -> &CampaignParams {
        &self.params
    }

    /// The `RowId` of rank `i` (1-based).
    pub fn rid_of_rank(&self, rank: u64) -> RowId {
        self.rids[(rank - 1) as usize]
    }

    // ---- closed-form expectations (Eq. 4 inputs) --------------------------

    /// The warmed tracker's max relative access frequency:
    /// `fmax = c_1 / Σ c_i = 1 / H(n, α)` exactly.
    pub fn fmax(&self) -> f64 {
        1.0 / generalized_harmonic(self.params.n, self.params.alpha)
    }

    /// The policy's delay for rank `i` (with the cap applied).
    pub fn analytic_delay_at_rank(&self, rank: u64) -> f64 {
        analysis::delay_at_rank(
            self.params.n,
            self.params.alpha,
            self.params.beta,
            self.fmax(),
            rank,
        )
        .min(self.params.cap_secs)
    }

    /// Total delay a full-crawl adversary pays (Eq. 3 / capped variant).
    pub fn analytic_total(&self) -> f64 {
        let p = &self.params;
        if p.cap_secs.is_finite() {
            analysis::adversary_total_capped(p.n, p.alpha, p.beta, self.fmax(), p.cap_secs)
        } else {
            analysis::adversary_total(p.n, p.alpha, p.beta, self.fmax())
        }
    }

    /// Eq. 4: adversary total over the median user's delay.
    pub fn analytic_ratio(&self) -> f64 {
        let p = &self.params;
        let dmax = p.cap_secs.is_finite().then_some(p.cap_secs);
        analysis::delay_ratio(p.n, p.alpha, p.beta, self.fmax(), dmax)
    }

    /// The rank the median user query lands on.
    pub fn median_rank(&self) -> u64 {
        analysis::median_rank_exact(self.params.n, self.params.alpha)
    }

    /// The shaping policy the world actually prices under (the params'
    /// policy with the world seed folded into the jitter seed).
    pub fn effective_shaping(&self) -> DelayShaping {
        self.world.db().config().shaping
    }

    /// Expected shaped delay for rank `i` (the raw capped Eq. 1 price
    /// through the quantization/noise term; raw when shaping is off).
    pub fn analytic_shaped_delay_at_rank(&self, rank: u64) -> f64 {
        let p = &self.params;
        analysis::shaped_delay_at_rank(
            p.n,
            p.alpha,
            p.beta,
            self.fmax(),
            p.cap_secs,
            &self.effective_shaping(),
            rank,
        )
    }

    /// Eq. 4's numerator under shaping: expected total a full-sweep
    /// adversary is charged (equals [`Campaign::analytic_total`] when
    /// shaping is off).
    pub fn analytic_shaped_total(&self) -> f64 {
        let p = &self.params;
        analysis::shaped_adversary_total(
            p.n,
            p.alpha,
            p.beta,
            self.fmax(),
            p.cap_secs,
            &self.effective_shaping(),
        )
    }

    /// Eq. 3's median-user delay under shaping: expected charge of the
    /// median Zipf request.
    pub fn analytic_shaped_median_user_delay(&self) -> f64 {
        let p = &self.params;
        analysis::shaped_median_user_delay(
            p.n,
            p.alpha,
            p.beta,
            self.fmax(),
            p.cap_secs,
            &self.effective_shaping(),
        )
    }

    /// The information-theoretic tau ceiling under this world's shaping:
    /// the fraction of tuple pairs whose bucket still orders them.
    pub fn analytic_tau_ceiling(&self) -> f64 {
        let p = &self.params;
        analysis::shaping_tau_ceiling(
            p.n,
            p.alpha,
            p.beta,
            self.fmax(),
            p.cap_secs,
            &self.effective_shaping(),
        )
    }

    /// The point query that touches exactly the rank-`i` tuple.
    pub fn sql_for_rank(&self, rank: u64) -> String {
        format!("SELECT * FROM directory WHERE id = {}", rank - 1)
    }

    /// Every rank, in crawl order `1..=n`.
    pub fn all_ranks(&self) -> Vec<u64> {
        (1..=self.params.n).collect()
    }

    /// `count` ranks sampled from the user's Zipf(α) popularity
    /// distribution — the workload honest users (or a popularity-aware
    /// crawler) generate. Deterministic per campaign seed.
    pub fn zipf_ranks(&mut self, count: u64) -> Vec<u64> {
        let zipf = Zipf::new(self.params.n, self.params.alpha);
        (0..count).map(|_| zipf.sample(&mut self.rng)).collect()
    }

    /// Distinct-/24 source addresses for a Sybil swarm of `k`.
    pub fn sybil_ips(k: u64) -> Vec<[u8; 4]> {
        (0..k).map(|j| [10, (j >> 8) as u8, j as u8, 1]).collect()
    }

    /// `k` addresses on one /24 (the subnet-aggregation worst case).
    pub fn clustered_ips(k: u64) -> Vec<[u8; 4]> {
        (0..k).map(|j| [10, 0, 0, (j + 1) as u8]).collect()
    }

    // ---- drivers ----------------------------------------------------------

    fn register_link(&mut self, ip: [u8; 4]) -> (MeshLink, u64, u64) {
        let mut link = self.world.connect_link(ip);
        let (user, refusals) =
            net::register_until_admitted(&mut self.world, &mut link, [0; 4], REGISTER_TIMEOUT_SECS)
                .expect("registration");
        (link, user, refusals)
    }

    fn fresh_query_id(&mut self) -> u32 {
        let id = self.next_query_id;
        self.next_query_id += 1;
        id
    }

    /// One identity from `ip` crawls `ranks` in order, honoring refusal
    /// hints, accumulating the server's own delay accounting.
    pub fn sequential_crawl(&mut self, ip: [u8; 4], ranks: &[u64]) -> CrawlReport {
        let started_secs = self.world.now_secs();
        let (mut link, user, _) = self.register_link(ip);
        let mut report = CrawlReport {
            queries: 0,
            refused: 0,
            tuples: 0,
            total_delay_secs: 0.0,
            started_secs,
            finished_secs: started_secs,
            min_margin_secs: f64::INFINITY,
        };
        for &rank in ranks {
            let sql = self.sql_for_rank(rank);
            loop {
                let qid = self.fresh_query_id();
                match net::run_query(&mut link, qid, user, &sql, QUERY_TIMEOUT_SECS)
                    .expect("link alive")
                {
                    QueryOutcome::Rows {
                        rows,
                        delay_secs,
                        tuples,
                        sent_at_secs,
                        done_at_secs,
                        ..
                    } => {
                        assert_eq!(rows.len(), 1, "rank {rank} must be a point lookup");
                        report.queries += 1;
                        report.tuples += tuples as u64;
                        report.total_delay_secs += delay_secs;
                        let margin = (done_at_secs - sent_at_secs) - delay_secs;
                        report.min_margin_secs = report.min_margin_secs.min(margin);
                        break;
                    }
                    QueryOutcome::Refused {
                        retry_after_secs, ..
                    } => {
                        report.refused += 1;
                        self.world.run_for(retry_after_secs + 1e-6);
                    }
                    QueryOutcome::Error { message } => panic!("rank {rank}: {message}"),
                    QueryOutcome::TimedOut => panic!("rank {rank}: query timed out"),
                }
            }
        }
        report.finished_secs = self.world.now_secs();
        report
    }

    /// One identity from `ip` queries `ranks` in the given order, keeping
    /// a per-query [`Observation`] (true rank, server-charged delay,
    /// client-observed response time). The timing-adversary primitive:
    /// everything the attacker learns is in `observed_secs`.
    pub fn crawl_observations(&mut self, ip: [u8; 4], ranks: &[u64]) -> ObservationReport {
        let (mut link, user, _) = self.register_link(ip);
        let mut report = ObservationReport {
            observations: Vec::with_capacity(ranks.len()),
            refused: 0,
            total_charged_secs: 0.0,
            min_margin_secs: f64::INFINITY,
        };
        for &rank in ranks {
            let sql = self.sql_for_rank(rank);
            loop {
                let qid = self.fresh_query_id();
                match net::run_query(&mut link, qid, user, &sql, QUERY_TIMEOUT_SECS)
                    .expect("link alive")
                {
                    QueryOutcome::Rows {
                        rows,
                        delay_secs,
                        sent_at_secs,
                        done_at_secs,
                        ..
                    } => {
                        assert_eq!(rows.len(), 1, "rank {rank} must be a point lookup");
                        let observed = done_at_secs - sent_at_secs;
                        report.observations.push(Observation {
                            rank,
                            charged_secs: delay_secs,
                            observed_secs: observed,
                        });
                        report.total_charged_secs += delay_secs;
                        report.min_margin_secs = report.min_margin_secs.min(observed - delay_secs);
                        break;
                    }
                    QueryOutcome::Refused {
                        retry_after_secs, ..
                    } => {
                        report.refused += 1;
                        self.world.run_for(retry_after_secs + 1e-6);
                    }
                    QueryOutcome::Error { message } => panic!("rank {rank}: {message}"),
                    QueryOutcome::TimedOut => panic!("rank {rank}: query timed out"),
                }
            }
        }
        report
    }

    /// The rank-inference crawler: time every tuple once (in a shuffled
    /// order, so nothing but the timing channel carries rank), then sort
    /// by observed response time and score the recovered order against
    /// the true popularity ranks with Kendall tau and tail recall
    /// (`tail_k` = the least-popular eighth of the table).
    pub fn rank_inference_crawl(&mut self, ip: [u8; 4]) -> RankInferenceReport {
        let mut order = self.all_ranks();
        self.rng.shuffle(&mut order);
        let sweep = self.crawl_observations(ip, &order);
        let tau = kendall_tau(&sweep.observations);
        let tail_k = (self.params.n as usize / 8).max(1);
        let recall = tail_recall(&sweep.observations, tail_k);
        RankInferenceReport {
            sweep,
            tau,
            tail_recall: recall,
            tail_k,
        }
    }

    /// The adaptive attacker: probe `probes` random tuples to fit the
    /// delay-vs-rank power law (log-log least squares, probes' sorted
    /// delays matched to their expected order statistics), then sweep and
    /// spend the budget on the `tail_k` slowest-looking tuples. Against
    /// the unshaped policy the fit recovers `α + β` and the targeted set
    /// is the true value tail; under shaping both collapse.
    pub fn adaptive_probe_attack(
        &mut self,
        ip: [u8; 4],
        probes: usize,
        tail_k: usize,
    ) -> AdaptiveReport {
        assert!(probes >= 2 && (probes as u64) <= self.params.n);
        let mut pool = self.all_ranks();
        self.rng.shuffle(&mut pool);
        let probe_ranks: Vec<u64> = pool[..probes].to_vec();
        let probe_obs = self.crawl_observations(ip, &probe_ranks);
        let mut sorted: Vec<f64> = probe_obs
            .observations
            .iter()
            .map(|o| o.observed_secs)
            .collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
        // The j-th smallest probed delay estimates the j-th order
        // statistic of a uniform rank sample: rank ≈ j·(n+1)/(s+1).
        let n = self.params.n as f64;
        let pts: Vec<(f64, f64)> = sorted
            .iter()
            .enumerate()
            .map(|(j, &d)| {
                let assumed_rank = (j as f64 + 1.0) * (n + 1.0) / (probes as f64 + 1.0);
                (assumed_rank.ln(), d.max(1e-9).ln())
            })
            .collect();
        let fitted_exponent = theil_sen_slope(&pts);
        // Targeting phase: full timing sweep, aim at the slowest-looking.
        let mut order = self.all_ranks();
        self.rng.shuffle(&mut order);
        let sweep = self.crawl_observations(ip, &order);
        let tail_capture = tail_recall(&sweep.observations, tail_k);
        AdaptiveReport {
            fitted_exponent,
            probe_count: probes,
            tail_capture,
            sweep,
        }
    }

    /// An honest user session: `count` queries sampled from the Zipf(α)
    /// popularity distribution, with per-query charge observations (for
    /// the Eq. 3 median-user economics under shaping).
    pub fn honest_zipf_session(&mut self, ip: [u8; 4], count: u64) -> ObservationReport {
        let ranks = self.zipf_ranks(count);
        self.crawl_observations(ip, &ranks)
    }

    /// `ips.len()` identities register serially (honoring the
    /// registration-interval hints — the Sybil cost), then crawl `ranks`
    /// striped round-robin: identity `j` takes `ranks[j]`,
    /// `ranks[j + k]`, ... All stripes run concurrently in virtual time;
    /// the driver is work-conserving (an identity issues its next query
    /// the instant its previous `DONE` arrives).
    pub fn swarm_crawl(&mut self, ips: &[[u8; 4]], ranks: &[u64]) -> SybilReport {
        let k = ips.len();
        assert!(k > 0, "swarm needs at least one identity");
        let started_secs = self.world.now_secs();
        let mut links = Vec::with_capacity(k);
        let mut registration_refusals = 0;
        for &ip in ips {
            let (link, user, refusals) = self.register_link(ip);
            registration_refusals += refusals;
            links.push((link, user));
        }
        let registration_done_secs = self.world.now_secs();

        let mut report = SybilReport {
            identities: k as u64,
            registration_refusals,
            started_secs,
            registration_done_secs,
            finished_secs: registration_done_secs,
            total_delay_secs: 0.0,
            tuples: 0,
            refused_queries: 0,
            min_margin_secs: f64::INFINITY,
        };
        let mut states: Vec<StripeState> = (0..k)
            .map(|j| StripeState {
                next: j,
                inflight: None,
                resume_at: 0.0,
            })
            .collect();
        // Iterations since something last happened. A healthy pass either
        // sends, consumes an arrival, or advances virtual time; if none of
        // those occur for this long, the driver is livelocked — panic with
        // the full stripe/world state instead of spinning silently.
        let mut stalled: u32 = 0;
        loop {
            if stalled > 10_000 {
                let now = self.world.now_secs();
                let snapshot: Vec<String> = states
                    .iter()
                    .enumerate()
                    .map(|(j, s)| {
                        format!(
                            "id{j}: next={} inflight={} resume_at={:.9}",
                            s.next,
                            s.inflight.is_some(),
                            s.resume_at
                        )
                    })
                    .collect();
                panic!(
                    "swarm driver livelocked at virtual t={now:.9}s:\n{}\nworld: {}",
                    snapshot.join("\n"),
                    self.world.debug_snapshot()
                );
            }
            let mut active = false;
            let mut progressed = false;
            for (j, state) in states.iter_mut().enumerate() {
                let (link, user) = &mut links[j];
                // Issue the next query if this identity is idle.
                if state.inflight.is_none()
                    && state.next < ranks.len()
                    && self.world.now_secs() >= state.resume_at
                {
                    let rank = ranks[state.next];
                    let qid = self.next_query_id;
                    self.next_query_id += 1;
                    link.send(&Frame::Query {
                        query_id: qid,
                        user: *user,
                        sql: format!("SELECT * FROM directory WHERE id = {}", rank - 1),
                    })
                    .expect("link alive");
                    state.inflight = Some(Pending {
                        qid,
                        rank,
                        sent_at_secs: self.world.now_secs(),
                    });
                    progressed = true;
                }
                if state.inflight.is_some() || state.next < ranks.len() {
                    active = true;
                }
                // Drain whatever has already arrived, without waiting.
                while let Some(arrival) = link.recv(0.0).expect("link alive") {
                    let Some(pending) = state.inflight.as_ref() else {
                        continue;
                    };
                    match arrival.frame {
                        Frame::Done {
                            query_id,
                            delay_secs,
                            tuples,
                        } if query_id == pending.qid => {
                            report.total_delay_secs += delay_secs;
                            report.tuples += tuples as u64;
                            let margin = (arrival.at_secs - pending.sent_at_secs) - delay_secs;
                            report.min_margin_secs = report.min_margin_secs.min(margin);
                            state.next += k;
                            state.inflight = None;
                            progressed = true;
                        }
                        Frame::Refused {
                            query_id,
                            retry_after_secs,
                            ..
                        } if query_id == pending.qid || query_id == 0 => {
                            report.refused_queries += 1;
                            state.resume_at = self.world.now_secs() + retry_after_secs + 1e-6;
                            state.inflight = None;
                            progressed = true;
                        }
                        Frame::Error { message, .. } => {
                            panic!("rank {}: {message}", pending.rank)
                        }
                        _ => {} // RowsBegin / Row frames
                    }
                }
            }
            if !active {
                break;
            }
            stalled = if progressed { 0 } else { stalled + 1 };
            if !progressed {
                // Nothing arrived and nobody could send: advance virtual
                // time to the next scheduled instant, or to the earliest
                // retry if the whole swarm is backing off.
                if !self.world.step_once() {
                    let now = self.world.now_secs();
                    let resume = states
                        .iter()
                        .filter(|s| s.inflight.is_none() && s.next < ranks.len())
                        .map(|s| s.resume_at)
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        resume.is_finite() && resume > now,
                        "swarm deadlocked: queries in flight but world idle"
                    );
                    self.world.run_for(resume - now);
                }
            }
        }
        report.finished_secs = self.world.now_secs();
        report
    }
}

struct Pending {
    qid: u32,
    rank: u64,
    sent_at_secs: f64,
}

struct StripeState {
    /// Index into the shared rank list of this identity's next query.
    next: usize,
    inflight: Option<Pending>,
    /// Earliest virtual time this identity may send (refusal backoff).
    resume_at: f64,
}
