//! Refusal retry hints, exercised at scale in virtual time: a thousand
//! refuse→wait→retry cycles against the token bucket, probes just
//! before the hint, and exact registration-interval hints.

use delayguard_core::access::AccessDelayPolicy;
use delayguard_core::config::GuardConfig;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::policy::{ChargingModel, GuardPolicy};
use delayguard_server::gate::GateConfig;
use delayguard_server::protocol::RefuseReason;
use delayguard_testkit::net::{register_once, register_until_admitted, run_query};
use delayguard_testkit::{check, FaultPlan, QueryOutcome, SimConfig, SimWorld};
use std::time::Duration;

fn world_with(seed: u64, gatekeeper: GatekeeperConfig) -> SimWorld {
    let guard = GuardConfig::paper_default()
        .with_policy(GuardPolicy::AccessRate(
            AccessDelayPolicy::new(1.5, 1.0).with_cap(0.0),
        ))
        .with_charging(ChargingModel::PerQueryMax);
    let world = SimWorld::new(
        seed,
        SimConfig {
            guard,
            gate: GateConfig {
                gatekeeper,
                ..GateConfig::default()
            },
            tick: Duration::from_millis(1),
            send_queue_rows: 4096,
            faults: FaultPlan::ideal(),
        },
    );
    let db = world.db();
    db.execute_at("CREATE TABLE directory (id INT NOT NULL)", 0.0)
        .unwrap();
    db.execute_at("INSERT INTO directory VALUES (1)", 0.0)
        .unwrap();
    world
}

/// A thousand refuse→honor-the-hint→retry cycles, entirely in virtual
/// time. The bucket holds one token refilling at 1/s: each cycle's
/// first query drains it, the second is refused with an exact hint,
/// and waiting out the hint always re-admits. Every ~7th cycle also
/// probes just *before* the hint and must be refused again — the hint
/// is exact, not padded.
#[test]
fn thousand_refusal_retry_cycles_honor_exact_hints() {
    check(
        "thousand_refusal_retry_cycles_honor_exact_hints",
        55,
        |seed| {
            let world = world_with(
                seed,
                GatekeeperConfig {
                    per_user_rate: 1.0,
                    per_user_burst: 1.0,
                    per_subnet_rate: 1e9,
                    per_subnet_burst: 1e9,
                    registration: RegistrationPolicy::interval(0.0),
                    storefront_query_threshold: 0,
                },
            );
            let mut link = world.connect_link([10, 0, 0, 1]);
            let user = register_once(&mut link, [0; 4], 5.0)
                .expect("link alive")
                .expect("admitted");

            let sql = "SELECT * FROM directory WHERE id = 1";
            let mut qid = 0u32;
            macro_rules! run {
                () => {{
                    qid += 1;
                    run_query(&mut link, qid, user, sql, 30.0).expect("link alive")
                }};
            }

            let started = world.now_secs();
            let mut admitted = 0u64;
            let mut refused = 0u64;
            let mut probes_refused = 0u64;
            for cycle in 0..1000u64 {
                // Drain the bucket.
                match run!() {
                    QueryOutcome::Rows { .. } => admitted += 1,
                    other => panic!("cycle {cycle}: expected rows, got {other:?}"),
                }
                // Immediately again: refused, with a positive exact hint.
                let hint = match run!() {
                    QueryOutcome::Refused {
                        reason: RefuseReason::UserRate,
                        retry_after_secs,
                    } => {
                        refused += 1;
                        assert!(
                            retry_after_secs > 0.0,
                            "cycle {cycle}: hint must be positive"
                        );
                        retry_after_secs
                    }
                    other => panic!("cycle {cycle}: expected user-rate refusal, got {other:?}"),
                };
                if cycle % 7 == 0 {
                    // Probe 1 ms before the hint: still refused.
                    world.run_for((hint - 1e-3).max(0.0));
                    match run!() {
                        QueryOutcome::Refused {
                            reason: RefuseReason::UserRate,
                            ..
                        } => probes_refused += 1,
                        other => panic!("cycle {cycle}: early probe admitted: {other:?}"),
                    }
                    world.run_for(1e-3 + 1e-6);
                } else {
                    world.run_for(hint + 1e-6);
                }
            }
            assert_eq!(admitted, 1000);
            assert_eq!(refused, 1000);
            assert_eq!(probes_refused, 143, "every 7th cycle probes early");
            // ~1000 bucket refills of 1 s each happened in virtual time.
            let elapsed = world.now_secs() - started;
            assert!(
                (999.0..1100.0).contains(&elapsed),
                "virtual elapsed {elapsed}s, expected about 1000s"
            );
        },
    );
}

/// Registration hints are exact: with a 10 s global interval, each of
/// five identities is refused exactly once, and the five admissions land
/// 10 s apart.
#[test]
fn registration_interval_hints_are_exact() {
    check("registration_interval_hints_are_exact", 56, |seed| {
        let interval = 10.0;
        let mut world = world_with(
            seed,
            GatekeeperConfig {
                per_user_rate: 1e9,
                per_user_burst: 1e9,
                per_subnet_rate: 1e9,
                per_subnet_burst: 1e9,
                registration: RegistrationPolicy::interval(interval),
                storefront_query_threshold: 0,
            },
        );
        let mut refusals_total = 0;
        let mut admitted_at = Vec::new();
        for j in 0..5u8 {
            let mut link = world.connect_link([10, j, 0, 1]);
            let (_user, refusals) =
                register_until_admitted(&mut world, &mut link, [0; 4], 60.0).expect("registration");
            refusals_total += refusals;
            admitted_at.push(world.now_secs());
        }
        // First admitted instantly; each later identity refused exactly
        // once, then admitted right at the hinted instant.
        assert_eq!(refusals_total, 4);
        for w in admitted_at.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                (gap - interval).abs() < 1e-3,
                "admissions {gap}s apart, expected {interval}s"
            );
        }
    });
}
