//! The simulation harness itself: mesh round trips, same-seed
//! reproducibility, transport parity against real TCP, seeded fault
//! injection, and the partition-mid-drain acceptance scenario.

use delayguard_core::access::AccessDelayPolicy;
use delayguard_core::config::GuardConfig;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::policy::{ChargingModel, GuardPolicy};
use delayguard_core::GuardedDatabase;
use delayguard_server::gate::GateConfig;
use delayguard_server::protocol::{Frame, RefuseReason};
use delayguard_server::server::{Server, ServerConfig};
use delayguard_sim::Registry;
use delayguard_testkit::net::{register_once, run_query};
use delayguard_testkit::{
    check, FaultPlan, NetLink, QueryOutcome, SimConfig, SimNet, SimWorld, TcpNet,
};
use std::sync::Arc;
use std::time::Duration;

fn open_gatekeeper() -> GatekeeperConfig {
    GatekeeperConfig {
        per_user_rate: 1000.0,
        per_user_burst: 1000.0,
        per_subnet_rate: 1000.0,
        per_subnet_burst: 1000.0,
        registration: RegistrationPolicy::interval(0.0),
        storefront_query_threshold: 0,
    }
}

fn guard_config(cap_secs: f64) -> GuardConfig {
    GuardConfig::paper_default()
        .with_policy(GuardPolicy::AccessRate(
            AccessDelayPolicy::new(1.5, 1.0).with_cap(cap_secs),
        ))
        .with_charging(ChargingModel::PerQueryMax)
}

fn seed_directory(db: &GuardedDatabase, rows: usize) {
    db.execute_at(
        "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
        0.0,
    )
    .unwrap();
    db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
        .unwrap();
    for id in 0..rows {
        db.execute_at(
            &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
            0.0,
        )
        .unwrap();
    }
}

fn sim_world(seed: u64, rows: usize, cap_secs: f64, faults: FaultPlan) -> SimWorld {
    let world = SimWorld::new(
        seed,
        SimConfig {
            guard: guard_config(cap_secs),
            gate: GateConfig {
                gatekeeper: open_gatekeeper(),
                ..GateConfig::default()
            },
            tick: Duration::from_millis(1),
            send_queue_rows: 4096,
            faults,
        },
    );
    seed_directory(&world.db(), rows);
    world
}

#[test]
fn mesh_round_trip_enforces_delay_in_virtual_time() {
    check(
        "mesh_round_trip_enforces_delay_in_virtual_time",
        11,
        |seed| {
            let cap = 0.3;
            let world = sim_world(seed, 10, cap, FaultPlan::ideal());
            let mut link = world.connect_link([10, 0, 0, 1]);
            let user = register_once(&mut link, [0; 4], 5.0)
                .expect("link alive")
                .expect("admitted");
            // Cold table: every tuple of the first scan is charged the cap.
            let sent = world.now_secs();
            match run_query(&mut link, 1, user, "SELECT * FROM directory", 30.0).unwrap() {
                QueryOutcome::Rows {
                    rows,
                    announced,
                    delay_secs,
                    done_at_secs,
                    row_arrivals,
                    ..
                } => {
                    assert_eq!(rows.len(), 10);
                    assert_eq!(announced, 10);
                    assert!(
                        (delay_secs - cap).abs() < 1e-9,
                        "cold scan charged {delay_secs}"
                    );
                    // Virtual time really passed, and never early.
                    assert!(done_at_secs - sent >= cap - 1e-9);
                    for &at in &row_arrivals {
                        assert!(at - sent >= cap - 1e-9, "row released early at {at}");
                    }
                }
                other => panic!("expected rows, got {other:?}"),
            }
        },
    );
}

#[test]
fn same_seed_runs_are_bit_identical() {
    check("same_seed_runs_are_bit_identical", 1207, |seed| {
        let run = |seed: u64| {
            let world = sim_world(
                seed,
                20,
                0.2,
                FaultPlan::wan().with_drops(0.05).with_reordering(0.2, 0.05),
            );
            let mut link = world.connect_link([10, 0, 0, 1]);
            let user = register_once(&mut link, [0; 4], 60.0)
                .expect("link alive")
                .expect("admitted");
            let mut summary = Vec::new();
            for q in 0..5u32 {
                let outcome =
                    run_query(&mut link, q + 1, user, "SELECT * FROM directory", 10.0).unwrap();
                summary.push(format!("{outcome:?}"));
            }
            (
                world.digest(),
                world.frames_delivered(),
                world.frames_dropped(),
                summary,
            )
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.0, b.0, "same seed must produce identical digests");
        assert_eq!(a, b, "same seed must reproduce the whole execution");
        // A different seed shifts the fault sampling and therefore the
        // execution; the digest sees it.
        let c = run(seed ^ 0x5555_5555);
        assert_ne!(a.0, c.0, "digest must be sensitive to the seed");
    });
}

/// The same scenario through the in-memory mesh and through real TCP
/// against a real `Server`, compared outcome by outcome: refusal
/// reasons, row counts, and the exact charged delays. What campaigns
/// prove on the mesh is a property of the deployed wire protocol.
#[test]
fn transport_parity_mesh_vs_tcp() {
    fn scenario(net: &mut dyn SimNet) -> Vec<String> {
        let mut out = Vec::new();
        let mut link = net.connect([10, 7, 7, 1]).expect("connect");
        // Unregistered queries are refused with the explicit reason.
        match run_query(
            &mut *link,
            1,
            999_999,
            "SELECT * FROM directory WHERE id = 1",
            10.0,
        )
        .unwrap()
        {
            QueryOutcome::Refused { reason, .. } => out.push(format!("refused:{reason:?}")),
            other => out.push(format!("unexpected:{other:?}")),
        }
        let user = register_once(&mut *link, [0; 4], 10.0)
            .expect("link alive")
            .expect("admitted");
        // A cold point lookup, then a cold scan of the rest.
        for sql in [
            "SELECT * FROM directory WHERE id = 3",
            "SELECT * FROM directory",
        ] {
            match run_query(&mut *link, 2, user, sql, 30.0).unwrap() {
                QueryOutcome::Rows {
                    rows,
                    announced,
                    delay_secs,
                    tuples,
                    ..
                } => out.push(format!(
                    "rows:{} announced:{announced} delay:{delay_secs:.6} tuples:{tuples}",
                    rows.len()
                )),
                other => out.push(format!("unexpected:{other:?}")),
            }
        }
        out
    }

    let rows = 6;
    let cap = 0.25;

    let mut mesh = sim_world(4242, rows, cap, FaultPlan::ideal());
    let mesh_out = scenario(&mut mesh);

    let db = Arc::new(GuardedDatabase::new(guard_config(cap)));
    seed_directory(&db, rows);
    let handle = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            gatekeeper: open_gatekeeper(),
            ..ServerConfig::default()
        },
        db,
        Registry::new(),
    )
    .expect("server starts");
    let mut tcp = TcpNet::new(handle.addr().to_string());
    let tcp_out = scenario(&mut tcp);
    handle.shutdown();

    assert_eq!(
        mesh_out, tcp_out,
        "mesh and TCP must observe the same protocol"
    );
}

#[test]
fn seeded_drops_and_resets_are_injected() {
    check("seeded_drops_and_resets_are_injected", 77, |seed| {
        let world = sim_world(seed, 4, 0.0, FaultPlan::ideal());
        let mut completed = 0u32;
        let mut failed = 0u32;
        for i in 0..40u32 {
            let mut link = world.connect_link([10, 1, (i >> 8) as u8, i as u8]);
            world.set_faults(
                link.id(),
                FaultPlan::ideal().with_drops(0.10).with_resets(0.02),
            );
            let Ok(Ok(user)) = register_once(&mut link, [0; 4], 5.0) else {
                failed += 1;
                continue;
            };
            match run_query(&mut link, 1, user, "SELECT * FROM directory", 5.0) {
                Ok(QueryOutcome::Rows { rows, .. }) if rows.len() == 4 => completed += 1,
                _ => failed += 1,
            }
        }
        assert!(
            world.frames_dropped() > 0,
            "a 10% drop rate over 40 sessions must drop something"
        );
        assert!(completed > 0, "some sessions must still complete");
        assert!(failed > 0, "some sessions must be disturbed by faults");
    });
}

#[test]
fn reordering_faults_preserve_the_logical_result_set() {
    check(
        "reordering_faults_preserve_the_logical_result_set",
        3001,
        |seed| {
            let world = sim_world(seed, 20, 0.0, FaultPlan::ideal());
            let mut link = world.connect_link([10, 0, 0, 9]);
            world.set_faults(link.id(), FaultPlan::wan().with_reordering(0.4, 0.2));
            let user = register_once(&mut link, [0; 4], 10.0)
                .expect("link alive")
                .expect("admitted");
            link.send(&Frame::Query {
                query_id: 1,
                user,
                sql: "SELECT * FROM directory".into(),
            })
            .unwrap();
            // Collect every frame, not stopping at DONE: a reordered row may
            // legitimately overtake it (that's the fault being injected).
            let mut seqs = Vec::new();
            while seqs.len() < 20 {
                match link.recv(5.0).unwrap() {
                    Some(arrival) => {
                        if let Frame::Row { seq, .. } = arrival.frame {
                            seqs.push(seq);
                        }
                    }
                    None => panic!("lost a row: got {seqs:?}"),
                }
            }
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_ne!(
                seqs, sorted,
                "seeded reordering must be observable on the wire"
            );
            // Nothing lost, nothing duplicated: the logical result set is
            // intact once re-assembled by sequence number.
            let unique: std::collections::BTreeSet<u32> = seqs.iter().copied().collect();
            assert_eq!(unique.len(), 20);
        },
    );
}

/// The acceptance scenario: a partition cuts the client off while its
/// delayed tuples are still on the wheel; graceful drain must hold every
/// one of them to its deadline and deliver them all once the partition
/// heals — nothing lost, nothing early.
#[test]
fn partition_mid_drain_delivers_every_tuple_after_heal() {
    check(
        "partition_mid_drain_delivers_every_tuple_after_heal",
        909,
        |seed| {
            let cap = 5.0;
            let world = sim_world(seed, 10, cap, FaultPlan::ideal());
            let mut link = world.connect_link([10, 0, 0, 1]);
            let user = register_once(&mut link, [0; 4], 5.0)
                .expect("link alive")
                .expect("admitted");

            let sent = world.now_secs();
            link.send(&Frame::Query {
                query_id: 7,
                user,
                sql: "SELECT * FROM directory".into(),
            })
            .unwrap();
            // Let the query land on the wheel, then cut the wire.
            world.run_for(0.05);
            world.partition(link.id());

            // Drain with ten tuples pending behind the partition. The wheel
            // must still fire every deadline; the frames pile up at the cut.
            world.shutdown();
            assert!(
                world.now_secs() - sent >= cap,
                "drain must wait out the delays"
            );

            // Nothing but the pre-partition RowsBegin made it through.
            let mut pre_heal = Vec::new();
            while let Ok(Some(arrival)) = link.recv(0.0) {
                pre_heal.push(arrival.frame);
            }
            assert!(
                pre_heal
                    .iter()
                    .all(|f| matches!(f, Frame::RowsBegin { .. })),
                "no delayed tuple may cross a partition: {pre_heal:?}"
            );

            // Heal: every held frame floods through, no earlier than now.
            world.heal(link.id());
            let mut rows = 0;
            let mut done = None;
            while let Ok(Some(arrival)) = link.recv(0.1) {
                match arrival.frame {
                    Frame::Row { .. } => {
                        rows += 1;
                        assert!(
                            arrival.at_secs - sent >= cap - 1e-9,
                            "tuple released before its deadline"
                        );
                    }
                    Frame::Done {
                        delay_secs, tuples, ..
                    } => done = Some((delay_secs, tuples, arrival.at_secs)),
                    Frame::RowsBegin { .. } | Frame::RowsEnd { .. } => {}
                    other => panic!("unexpected frame after heal: {other:?}"),
                }
                if done.is_some() && rows == 10 {
                    break;
                }
            }
            assert_eq!(rows, 10, "drain must deliver every in-flight delayed tuple");
            let (delay_secs, tuples, done_at) = done.expect("DONE after heal");
            assert_eq!(tuples, 10);
            assert!(delay_secs >= cap - 1e-9);
            assert!(done_at - sent >= cap - 1e-9);

            // And a draining front door refuses new work explicitly.
            let mut late = world.connect_link([10, 0, 0, 2]);
            match register_once(&mut late, [0; 4], 1.0).unwrap() {
                Err(_) => {}
                Ok(user) => panic!("registration admitted user {user} during drain"),
            }
            match run_query(&mut late, 1, user, "SELECT * FROM directory", 1.0).unwrap() {
                QueryOutcome::Refused { reason, .. } => {
                    assert_eq!(reason, RefuseReason::ShuttingDown)
                }
                other => panic!("expected shutting-down refusal, got {other:?}"),
            }
        },
    );
}
