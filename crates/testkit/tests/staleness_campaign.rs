//! §3 staleness guarantees, end to end: a live `UPDATE` stream pushed
//! through the new mutation frames races an extraction crawl in virtual
//! time, and the stale fraction of the extracted copy must land on the
//! Eq. 11/12 closed form. Also the inertness proof for the combined
//! access+update policy: with the update term zeroed, a read-only world
//! is bit-identical to the plain access-rate world.

use delayguard_core::access::AccessDelayPolicy;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::policy::GuardPolicy;
use delayguard_core::update::UpdateDelayPolicy;
use delayguard_core::GuardConfig;
use delayguard_server::gate::GateConfig;
use delayguard_testkit::net::{self, QueryOutcome};
use delayguard_testkit::world::{SimConfig, SimWorld};
use delayguard_testkit::{check, check_seeds, FaultPlan, StalenessCampaign, StalenessParams};
use std::time::Duration;

fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() <= tol * expected.abs(),
        "{what}: measured {actual}, expected {expected} (±{:.0}%)",
        tol * 100.0
    );
}

/// The tentpole claim: race the crawl against the update stream and the
/// measured stale fraction lands within 10% of
/// [`delayguard_core::analysis::stale_fraction_exact`], on the pinned
/// seed and on any `TESTKIT_REPLAY` seed.
#[test]
fn stale_fraction_tracks_the_closed_form() {
    check_seeds("stale_fraction_tracks_the_closed_form", &[17, 43], |seed| {
        let mut campaign = StalenessCampaign::new(seed, StalenessParams::default());
        let analytic_total = campaign.analytic_total();
        let report = campaign.run();

        // The crawl pays the Eq. 9 total (the warmed tracker makes the
        // estimated rates exact at crawl start; tick rounding and the
        // crawl's own drift stay under the tolerance).
        assert_close(
            report.total_delay_secs,
            analytic_total,
            0.05,
            "crawl total vs Eq. 9 sum",
        );
        // No tuple is ever released before its charged delay.
        assert!(
            report.min_margin_secs >= -1e-6,
            "early release: margin {}",
            report.min_margin_secs
        );
        // The headline §3 number.
        assert_close(
            report.stale_fraction,
            report.expected_fraction,
            0.10,
            "stale fraction vs Eq. 11/12 exact form",
        );
        // The exact form sits next to the paper's asymptotic S_max.
        assert_close(
            report.expected_fraction,
            report.smax,
            0.05,
            "exact form vs asymptotic S_max",
        );
        // The update stream really ran: the schedule predicts
        // crawl_secs · r_max · H(n) ≈ 520 statements at the defaults.
        assert!(
            report.updates_issued > 300,
            "suspiciously quiet update stream: {}",
            report.updates_issued
        );
        // Age-of-information is bounded by the crawl itself: a stale
        // value was captured mid-crawl, so its age is positive and no
        // older than the full crawl.
        assert!(report.stale > 0);
        assert!(report.mean_age_secs > 0.0);
        assert!(
            report.max_age_secs <= report.crawl_secs + 1e-6,
            "age {} exceeds crawl {}",
            report.max_age_secs,
            report.crawl_secs
        );
        assert!(report.mean_age_secs <= report.max_age_secs);
    });
}

/// Same seed, same race — bit-identical world digest and identical
/// verdicts, mutations included (the replay harness must cover writes).
#[test]
fn staleness_race_replays_bit_identically() {
    check("staleness_race_replays_bit_identically", 23, |seed| {
        let run = |seed| {
            let mut campaign = StalenessCampaign::new(seed, StalenessParams::default());
            let report = campaign.run();
            (
                campaign.world().digest(),
                report.stale,
                report.total_delay_secs,
            )
        };
        let (d1, stale1, total1) = run(seed);
        let (d2, stale2, total2) = run(seed);
        assert_eq!(d1, d2, "staleness race diverged for seed {seed}");
        assert_eq!(stale1, stale2);
        assert_eq!(total1.to_bits(), total2.to_bits());
    });
}

/// The combined access+update policy is inert when the update term is
/// off: a read-only run under `Hybrid(access, update)` with the update
/// cap at zero is bit-identical — digest and totals — to the plain
/// access-rate world, while a live update term changes the wire trace
/// and only raises prices (max-combine).
#[test]
fn update_term_off_is_bit_identical_for_reads() {
    check("update_term_off_is_bit_identical_for_reads", 19, |seed| {
        let run = |policy: GuardPolicy| {
            let world = SimWorld::new(
                seed,
                SimConfig {
                    guard: GuardConfig::paper_default().with_policy(policy),
                    gate: GateConfig {
                        gatekeeper: GatekeeperConfig {
                            per_user_rate: 1e9,
                            per_user_burst: 1e9,
                            per_subnet_rate: 1e9,
                            per_subnet_burst: 1e9,
                            registration: RegistrationPolicy::interval(0.0),
                            storefront_query_threshold: 0,
                        },
                        ..GateConfig::default()
                    },
                    tick: Duration::from_millis(1),
                    send_queue_rows: 4096,
                    faults: FaultPlan::ideal(),
                },
            );
            let db = world.db();
            db.execute_at(
                "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
                0.0,
            )
            .expect("create table");
            for id in 0..16 {
                db.execute_at(
                    &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
                    0.0,
                )
                .expect("insert");
            }
            // Age the world (read-only: no row ever sees an update
            // event, so a live update term prices at its cap), then
            // crawl twice.
            world.run_for(1000.0);
            let mut world = world;
            let mut link = world.connect_link([10, 0, 0, 1]);
            let (user, _) = net::register_until_admitted(&mut world, &mut link, [0; 4], 600.0)
                .expect("register");
            let mut total = 0.0;
            for pass in 0..2u32 {
                for id in 0..16u64 {
                    let sql = format!("SELECT * FROM directory WHERE id = {id}");
                    let qid = 100 * (pass + 1) + id as u32;
                    match net::run_query(&mut link, qid, user, &sql, 3600.0).expect("link alive") {
                        QueryOutcome::Rows { delay_secs, .. } => total += delay_secs,
                        other => panic!("id {id}: {other:?}"),
                    }
                }
            }
            (world.digest(), total)
        };

        let access = AccessDelayPolicy::new(1.5, 1.0);
        let (d_plain, t_plain) = run(GuardPolicy::AccessRate(access));
        let (d_off, t_off) = run(GuardPolicy::Hybrid(
            access,
            UpdateDelayPolicy::new(0.3).with_cap(0.0),
        ));
        assert_eq!(
            d_plain, d_off,
            "a zeroed update term must not perturb the world (seed {seed})"
        );
        assert_eq!(t_plain.to_bits(), t_off.to_bits());

        let (d_on, t_on) = run(GuardPolicy::Hybrid(
            access,
            UpdateDelayPolicy::new(0.3).with_cap(30.0),
        ));
        assert_ne!(d_plain, d_on, "a live update term must change the trace");
        assert!(t_on > t_plain, "max-combine only raises prices");
    });
}
