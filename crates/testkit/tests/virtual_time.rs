//! Virtual-time ports of the wall-clock server integration scenarios:
//! the same end-to-end properties, no real sleeping. What takes the TCP
//! suite seconds of wall waiting runs here in milliseconds, and the
//! delay arithmetic becomes exact instead of "at least".

use delayguard_core::access::AccessDelayPolicy;
use delayguard_core::config::GuardConfig;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::policy::{ChargingModel, GuardPolicy};
use delayguard_server::gate::GateConfig;
use delayguard_server::protocol::{Frame, RefuseReason};
use delayguard_sim::MetricValue;
use delayguard_testkit::net::{register_once, run_query};
use delayguard_testkit::{check, FaultPlan, NetLink, QueryOutcome, SimConfig, SimWorld};
use std::time::{Duration, Instant};

fn open_gatekeeper() -> GatekeeperConfig {
    GatekeeperConfig {
        per_user_rate: 1000.0,
        per_user_burst: 1000.0,
        per_subnet_rate: 1000.0,
        per_subnet_burst: 1000.0,
        registration: RegistrationPolicy::interval(0.0),
        storefront_query_threshold: 0,
    }
}

fn sim_world(seed: u64, rows: usize, cap_secs: f64, send_queue_rows: usize) -> SimWorld {
    let guard = GuardConfig::paper_default()
        .with_policy(GuardPolicy::AccessRate(
            AccessDelayPolicy::new(1.5, 1.0).with_cap(cap_secs),
        ))
        .with_charging(ChargingModel::PerQueryMax);
    let world = SimWorld::new(
        seed,
        SimConfig {
            guard,
            gate: GateConfig {
                gatekeeper: open_gatekeeper(),
                ..GateConfig::default()
            },
            tick: Duration::from_millis(1),
            send_queue_rows,
            faults: FaultPlan::ideal(),
        },
    );
    let db = world.db();
    db.execute_at(
        "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
        0.0,
    )
    .unwrap();
    db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
        .unwrap();
    for id in 0..rows {
        db.execute_at(
            &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
            0.0,
        )
        .unwrap();
    }
    world
}

/// Port of `popular_tuple_streams_faster_than_unpopular`: both clients
/// race concurrently in virtual time, and the margin assertions are
/// exact rather than racy.
#[test]
fn popular_tuple_streams_faster_than_unpopular() {
    check("popular_tuple_streams_faster_than_unpopular", 21, |seed| {
        let cap = 0.4;
        let world = sim_world(seed, 50, cap, 4096);
        let db = world.db();
        for t in 0..200 {
            db.execute_at("SELECT entry FROM directory WHERE id = 1", t as f64)
                .unwrap();
        }
        // The snapshot read path refreshes on age or pending-event count;
        // neither advances here without a wall clock, so refresh by hand.
        db.refresh();

        let mut popular = world.connect_link([10, 0, 0, 1]);
        let mut unpopular = world.connect_link([10, 0, 1, 1]);
        let pop_user = register_once(&mut popular, [0; 4], 5.0)
            .expect("link alive")
            .expect("admitted");
        let unpop_user = register_once(&mut unpopular, [0; 4], 5.0)
            .expect("link alive")
            .expect("admitted");

        // Both queries leave at the same virtual instant.
        let sent = world.now_secs();
        popular
            .send(&Frame::Query {
                query_id: 1,
                user: pop_user,
                sql: "SELECT entry FROM directory WHERE id = 1".into(),
            })
            .unwrap();
        unpopular
            .send(&Frame::Query {
                query_id: 2,
                user: unpop_user,
                sql: "SELECT entry FROM directory WHERE id = 37".into(),
            })
            .unwrap();
        world.run_for(cap + 0.1);

        let collect = |link: &mut dyn NetLink| {
            let mut done = None;
            let mut rows = 0;
            while let Ok(Some(arrival)) = link.recv(0.0) {
                match arrival.frame {
                    Frame::Row { .. } => rows += 1,
                    Frame::Done { delay_secs, .. } => done = Some((delay_secs, arrival.at_secs)),
                    _ => {}
                }
            }
            (rows, done.expect("DONE within the cap window"))
        };
        let (pop_rows, (pop_delay, pop_done)) = collect(&mut popular);
        let (unpop_rows, (unpop_delay, unpop_done)) = collect(&mut unpopular);

        assert_eq!(pop_rows, 1);
        assert_eq!(unpop_rows, 1);
        assert!(
            unpop_delay >= cap - 1e-9,
            "unpopular tuple should be charged the cap, got {unpop_delay}"
        );
        assert!(
            pop_delay < cap / 4.0,
            "popular tuple should be charged far below the cap, got {pop_delay}"
        );
        // Enforcement on the virtual wire: never early, and the popular
        // answer beats the unpopular one by the policy margin.
        assert!(unpop_done - sent >= unpop_delay - 1e-9);
        assert!(unpop_done - pop_done >= cap / 2.0 - 1e-9);
    });
}

/// Port of `draining_server_refuses_new_queries` +
/// `graceful_shutdown_delivers_inflight_delayed_tuples`: begin a drain
/// with a slow query on the wheel; new queries are refused as shutting
/// down while every in-flight tuple is still delivered at its deadline.
#[test]
fn draining_refuses_new_queries_but_delivers_inflight() {
    check(
        "draining_refuses_new_queries_but_delivers_inflight",
        22,
        |seed| {
            let cap = 0.8;
            let world = sim_world(seed, 8, cap, 4096);
            let mut first = world.connect_link([10, 0, 0, 1]);
            let mut second = world.connect_link([10, 0, 1, 1]);
            let first_user = register_once(&mut first, [0; 4], 5.0)
                .expect("link alive")
                .expect("admitted");
            let second_user = register_once(&mut second, [0; 4], 5.0)
                .expect("link alive")
                .expect("admitted");

            let sent = world.now_secs();
            first
                .send(&Frame::Query {
                    query_id: 1,
                    user: first_user,
                    sql: "SELECT * FROM directory".into(),
                })
                .unwrap();
            world.run_for(0.05);
            world.gate().begin_drain();

            match run_query(&mut second, 2, second_user, "SELECT * FROM directory", 1.0).unwrap() {
                QueryOutcome::Refused { reason, .. } => {
                    assert_eq!(reason, RefuseReason::ShuttingDown)
                }
                other => panic!("expected shutting-down refusal, got {other:?}"),
            }

            world.run_until_idle();
            let mut rows = 0;
            let mut done_at = None;
            while let Ok(Some(arrival)) = first.recv(0.0) {
                match arrival.frame {
                    Frame::Row { .. } => rows += 1,
                    Frame::Done { .. } => done_at = Some(arrival.at_secs),
                    _ => {}
                }
            }
            assert_eq!(rows, 8, "drain must deliver every in-flight tuple");
            let done_at = done_at.expect("DONE delivered by the drain");
            assert!(done_at - sent >= cap - 1e-9, "drain must not release early");
        },
    );
}

/// Port of `ten_thousand_delays_share_one_scheduler_thread`, plus the
/// testkit's own selling point: the half-second that test spends
/// genuinely sleeping is virtual here, so the whole thing is bounded by
/// processing cost, not by the delay being enforced.
#[test]
fn ten_thousand_delays_pend_on_the_wheel_in_virtual_time() {
    check(
        "ten_thousand_delays_pend_on_the_wheel_in_virtual_time",
        23,
        |seed| {
            let cap = 0.5;
            let wall = Instant::now();
            let world = sim_world(seed, 10_000, cap, 20_000);
            let mut link = world.connect_link([10, 0, 0, 1]);
            let user = register_once(&mut link, [0; 4], 5.0)
                .expect("link alive")
                .expect("admitted");
            match run_query(&mut link, 1, user, "SELECT * FROM directory", 30.0).unwrap() {
                QueryOutcome::Rows {
                    rows,
                    sent_at_secs,
                    done_at_secs,
                    ..
                } => {
                    assert_eq!(rows.len(), 10_000);
                    assert!(done_at_secs - sent_at_secs >= cap - 1e-9);
                }
                other => panic!("expected rows, got {other:?}"),
            }
            // Same-deadline rows coalesce into one wheel entry per chunk
            // (10 000 rows / 256-row chunks), so the wheel pends tens of
            // batched sends, never one entry per tuple.
            let chunks = (10_000i64 + 255) / 256;
            match world.registry().value("scheduler_pending") {
                Some(MetricValue::Gauge { high_water, .. }) => {
                    assert!(
                        high_water >= chunks && high_water <= chunks + 4,
                        "pending high water {high_water}, expected ~{chunks} coalesced sends"
                    )
                }
                other => panic!("scheduler_pending missing: {other:?}"),
            }
            match world.registry().value("server_rows_streamed") {
                Some(MetricValue::Counter(n)) => assert_eq!(n, 10_000),
                other => panic!("server_rows_streamed missing: {other:?}"),
            }
            // Seeding 10k rows dominates; the enforced half second costs
            // nothing. Generous bound so debug builds under load still pass.
            assert!(
                wall.elapsed() < Duration::from_secs(30),
                "virtual-time test must not wait out real delays"
            );
        },
    );
}
