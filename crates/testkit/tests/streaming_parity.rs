//! Wire-level parity between the v2 streaming pipeline (trailer framing,
//! chunked reservation) and the v1 materialized path (count-up-front
//! framing): same rows, same per-row release times, same charged delay,
//! byte-for-byte identical `ROW`/`DONE` frames. Plus the
//! charge-before-shed regression: a query refused by send-queue
//! backpressure must charge nothing and record no access events.

use delayguard_core::access::AccessDelayPolicy;
use delayguard_core::config::GuardConfig;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::policy::{ChargingModel, GuardPolicy};
use delayguard_core::snapshot::SnapshotPolicy;
use delayguard_core::GuardedDatabase;
use delayguard_server::gate::GateConfig;
use delayguard_server::protocol::{Frame, ROWS_UNKNOWN};
use delayguard_testkit::net::{register_once_with_version, run_query, Arrival, LinkError, NetLink};
use delayguard_testkit::{check, FaultPlan, QueryOutcome, SimConfig, SimWorld};
use std::time::Duration;

fn open_gatekeeper() -> GatekeeperConfig {
    GatekeeperConfig {
        per_user_rate: 1000.0,
        per_user_burst: 1000.0,
        per_subnet_rate: 1000.0,
        per_subnet_burst: 1000.0,
        registration: RegistrationPolicy::interval(0.0),
        storefront_query_threshold: 0,
    }
}

fn guard_config(cap_secs: f64) -> GuardConfig {
    // Refresh after every statement so both framing modes apply their
    // recorded accesses at the same points: the v2 path records one event
    // per chunk, the v1 path one per statement, and an eager refresh
    // collapses that difference before the next query prices anything.
    GuardConfig::paper_default()
        .with_policy(GuardPolicy::AccessRate(
            AccessDelayPolicy::new(1.5, 1.0).with_cap(cap_secs),
        ))
        .with_charging(ChargingModel::PerTupleSum)
        .with_snapshot_policy(SnapshotPolicy {
            max_pending_events: 1,
            ..SnapshotPolicy::default()
        })
}

fn seed_directory(db: &GuardedDatabase, rows: usize) {
    db.execute_at(
        "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
        0.0,
    )
    .unwrap();
    db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
        .unwrap();
    for id in 0..rows {
        db.execute_at(
            &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
            0.0,
        )
        .unwrap();
    }
}

fn sim_world(seed: u64, rows: usize, cap_secs: f64, send_queue_rows: usize) -> SimWorld {
    let world = SimWorld::new(
        seed,
        SimConfig {
            guard: guard_config(cap_secs),
            gate: GateConfig {
                gatekeeper: open_gatekeeper(),
                // Small enough that a 10-row scan spans several chunks.
                stream_chunk_rows: 3,
                ..GateConfig::default()
            },
            tick: Duration::from_millis(1),
            send_queue_rows,
            faults: FaultPlan::ideal(),
        },
    );
    seed_directory(&world.db(), rows);
    world
}

/// Run one query, collecting every frame of the exchange with its arrival
/// time, through the terminal `DONE`/`REFUSED`/`ERROR`.
fn run_raw(
    link: &mut dyn NetLink,
    query_id: u32,
    user: u64,
    sql: &str,
    timeout_secs: f64,
) -> Result<Vec<Arrival>, LinkError> {
    link.send(&Frame::Query {
        query_id,
        user,
        sql: sql.to_owned(),
    })?;
    let deadline = link.now_secs() + timeout_secs;
    let mut frames = Vec::new();
    loop {
        let remaining = deadline - link.now_secs();
        if remaining <= 0.0 {
            return Ok(frames);
        }
        let Some(arrival) = link.recv(remaining)? else {
            return Ok(frames);
        };
        let terminal = matches!(
            arrival.frame,
            Frame::Done { .. } | Frame::Refused { .. } | Frame::Error { .. }
        );
        frames.push(arrival);
        if terminal {
            return Ok(frames);
        }
    }
}

const PARITY_QUERIES: &[&str] = &[
    "SELECT * FROM directory",
    "SELECT entry FROM directory WHERE id < 5",
    "SELECT * FROM directory ORDER BY id DESC LIMIT 3",
    "SELECT * FROM directory",
];

#[test]
fn streaming_and_materialized_framing_agree_on_the_wire() {
    check(
        "streaming_and_materialized_framing_agree_on_the_wire",
        2031,
        |seed| {
            let run = |version: u8| {
                let world = sim_world(seed, 10, 0.3, 4096);
                let mut link = world.connect_link([10, 0, 0, 1]);
                let user = register_once_with_version(&mut link, [0; 4], version, 5.0)
                    .expect("link alive")
                    .expect("admitted");
                let mut exchanges = Vec::new();
                for (i, sql) in PARITY_QUERIES.iter().enumerate() {
                    exchanges.push(run_raw(&mut link, i as u32 + 1, user, sql, 30.0).unwrap());
                }
                exchanges
            };
            let legacy = run(1);
            let streaming = run(2);
            assert_eq!(legacy.len(), streaming.len());
            for (qi, (l, s)) in legacy.iter().zip(streaming.iter()).enumerate() {
                // Substance: the ROW and DONE frames — payloads, sequence
                // numbers, charged delay — and their release times must be
                // bit-identical across the two framings.
                let substance = |frames: &[Arrival]| -> Vec<(u64, Frame)> {
                    frames
                        .iter()
                        .filter(|a| matches!(a.frame, Frame::Row { .. } | Frame::Done { .. }))
                        .map(|a| (a.at_secs.to_bits(), a.frame.clone()))
                        .collect()
                };
                assert_eq!(
                    substance(l),
                    substance(s),
                    "query {qi}: rows/done diverge between framings"
                );
                // Framing: v1 announces the exact count up front and sends
                // no trailer; v2 announces ROWS_UNKNOWN and trails with the
                // count.
                let n_rows = l
                    .iter()
                    .filter(|a| matches!(a.frame, Frame::Row { .. }))
                    .count() as u32;
                match &l[0].frame {
                    Frame::RowsBegin { rows, .. } => assert_eq!(*rows, n_rows),
                    other => panic!("query {qi}: legacy exchange began with {other:?}"),
                }
                assert!(
                    !l.iter().any(|a| matches!(a.frame, Frame::RowsEnd { .. })),
                    "query {qi}: legacy session received a trailer"
                );
                match &s[0].frame {
                    Frame::RowsBegin { rows, .. } => assert_eq!(*rows, ROWS_UNKNOWN),
                    other => panic!("query {qi}: streaming exchange began with {other:?}"),
                }
                let trailer = s
                    .iter()
                    .find(|a| matches!(a.frame, Frame::RowsEnd { .. }))
                    .expect("streaming session must receive a trailer");
                match trailer.frame {
                    Frame::RowsEnd { rows, .. } => assert_eq!(rows, n_rows),
                    _ => unreachable!(),
                }
            }
        },
    );
}

#[test]
fn legacy_client_still_gets_count_up_front_framing() {
    check(
        "legacy_client_still_gets_count_up_front_framing",
        77,
        |seed| {
            let world = sim_world(seed, 10, 0.1, 4096);
            let mut link = world.connect_link([10, 0, 0, 1]);
            let user = register_once_with_version(&mut link, [0; 4], 1, 5.0)
                .expect("link alive")
                .expect("admitted");
            match run_query(&mut link, 1, user, "SELECT * FROM directory", 30.0).unwrap() {
                QueryOutcome::Rows {
                    announced, rows, ..
                } => {
                    // `announced` comes straight from ROWS_BEGIN here: a v1
                    // session never sees ROWS_END, so the count must be exact
                    // up front.
                    assert_eq!(announced, 10);
                    assert_eq!(rows.len(), 10);
                }
                other => panic!("expected rows, got {other:?}"),
            }
        },
    );
}

#[test]
fn backpressure_refusal_charges_nothing() {
    check("backpressure_refusal_charges_nothing", 4011, |seed| {
        for version in [1u8, 2u8] {
            // A 2-row send queue cannot hold even one 3-row chunk (nor, on
            // a v1 session, the whole 10-row result): the very first
            // reservation fails, so the refusal must precede any charging.
            let world = sim_world(seed, 10, 0.3, 2);
            let mut link = world.connect_link([10, 0, 0, 1]);
            let user = register_once_with_version(&mut link, [0; 4], version, 5.0)
                .expect("link alive")
                .expect("admitted");
            match run_query(&mut link, 1, user, "SELECT * FROM directory", 30.0).unwrap() {
                QueryOutcome::Refused { .. } => {}
                other => panic!("v{version}: expected backpressure refusal, got {other:?}"),
            }
            let charged = world
                .registry()
                .counter("server_delay_micros_charged")
                .get();
            assert_eq!(charged, 0, "v{version}: refused query charged delay");
            assert_eq!(
                world.registry().counter("server_rows_streamed").get(),
                0,
                "v{version}: refused query streamed rows"
            );

            // And no access events leaked: the shed query must not have
            // warmed the popularity counts, so a later scan prices exactly
            // as on a control world that never saw the refusal.
            let control = sim_world(seed, 10, 0.3, 2);
            let at = world.now_secs().max(control.now_secs()) + 1.0;
            let after_refusal = world
                .db()
                .execute_at("SELECT * FROM directory", at)
                .unwrap()
                .delay_secs;
            let untouched = control
                .db()
                .execute_at("SELECT * FROM directory", at)
                .unwrap()
                .delay_secs;
            assert_eq!(
                after_refusal.to_bits(),
                untouched.to_bits(),
                "v{version}: refused query left access events behind"
            );
        }
    });
}
