//! Red-team campaigns against the delay channel itself.
//!
//! The §3 policy prices tuple `i` at `d(i) = i^(α+β)/(N·f_max)` — a
//! *strictly increasing* function of popularity rank. The price is also a
//! response time, so the delay that defends the database doubles as an
//! oracle that leaks exactly what the defense is protecting: which tuples
//! are rare. These campaigns drive that attack end to end on the virtual
//! clock — a rank-inference crawler that sorts the table by observed
//! response time, and an adaptive attacker that fits the delay-vs-rank
//! power law from a handful of probes and budgets toward the value tail —
//! and then show that the `DelayShaping` policy (geometric delay buckets
//! plus seeded per-query jitter) collapses both, at a bounded and
//! closed-form price hike for honest users (the shaped Eq. 3 / Eq. 4
//! forms in `delayguard_core::analysis`).
//!
//! Campaign geometry (`CampaignParams::sidechannel`): n = 1024,
//! α = β = 1, cap 8000 s, so raw delays run `d(1) ≈ 7 ms` …
//! `d(1024) ≈ 7690 s`, all distinct — the unshaped control leaks the
//! complete rank order (τ ≈ 1). Shaping quantizes onto edges
//! `8000·1000^m` = {…, 8 ms, 8 s, 8000 s}: the ~33 hottest ranks share
//! the fast buckets, ranks ~34–1024 the 8000 s bucket, and the analytic
//! τ ceiling drops to ≈ 0.06 (with within-bucket permutation noise
//! σ ≈ 0.02, so the 0.15 collapse bound sits >4σ away for any seed).
//!
//! Every failure prints a `TESTKIT_REPLAY=<seed>` rerun command, and all
//! assertions are robust to arbitrary seeds (CI replays this suite under
//! random seeds).

use delayguard_core::shaping::DelayShaping;
use delayguard_testkit::{check, check_seeds, Campaign, CampaignParams, RankInferenceReport};
use std::time::Instant;

const USER_IP: [u8; 4] = [172, 16, 0, 1];
const CRAWLER_IP: [u8; 4] = [10, 0, 0, 1];
const PROBER_IP: [u8; 4] = [10, 0, 1, 1];

fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() <= tol * expected.abs(),
        "{what}: measured {actual}, expected {expected} (±{:.0}%)",
        tol * 100.0
    );
}

/// One full rank-inference campaign: an honest probe of the median rank
/// first (clean Eq. 3 economics, before the crawl perturbs popularity),
/// then the attacker's shuffled full-table timing sweep.
fn rank_inference_campaign(seed: u64, shaped: bool) -> (Campaign, f64, RankInferenceReport) {
    let mut campaign = Campaign::new(seed, CampaignParams::sidechannel(shaped));
    let median = campaign.median_rank();
    let probe = campaign.crawl_observations(USER_IP, &[median]);
    let report = campaign.rank_inference_crawl(CRAWLER_IP);
    (campaign, probe.observations[0].charged_secs, report)
}

/// The attack this PR exists to demonstrate: with shaping off, a crawler
/// that issues one query per tuple in a *shuffled* order and sorts by
/// observed response time recovers the popularity ranking essentially
/// perfectly — Kendall τ ≈ 1 and the entire value tail identified — while
/// paying exactly the Eq. 4 adversary total.
#[test]
fn unshaped_timing_channel_leaks_rank_order() {
    check("unshaped_timing_channel_leaks_rank_order", 41, |seed| {
        let wall = Instant::now();
        let (campaign, median_charge, report) = rank_inference_campaign(seed, false);

        // The leak: observed time orders the table by secret rank.
        assert!(
            report.tau >= 0.9,
            "control crawl must recover rank order, τ = {}",
            report.tau
        );
        assert!(
            report.tail_recall >= 0.9,
            "control crawl must find the value tail, recall = {}",
            report.tail_recall
        );
        // With every raw delay distinct, the analytic ceiling is ~1 too.
        assert!(campaign.analytic_tau_ceiling() > 0.999);

        // Never-early: responses arrive at or after their deadlines.
        assert!(report.sweep.min_margin_secs >= -1e-6);

        // Economics stay on the closed forms: the median-rank user pays
        // Eq. 3, the full crawl pays Eq. 4.
        assert_close(
            median_charge,
            campaign.analytic_delay_at_rank(campaign.median_rank()),
            0.10,
            "control median-user delay (Eq. 3)",
        );
        assert_close(
            report.sweep.total_charged_secs,
            campaign.analytic_total(),
            0.10,
            "control adversary total (Eq. 4)",
        );

        let elapsed = wall.elapsed().as_secs_f64();
        assert!(
            elapsed < 10.0,
            "campaign must stay fast, took {elapsed:.2}s"
        );
    });
}

/// The defense: with shaping on, the same crawler's τ collapses below
/// 0.15 (and tracks the analytic cross-bucket ceiling), tail recall falls
/// to chance, honest users pay the shaped Eq. 3 form (8 s bucket × mean
/// jitter for the median rank), the adversary pays the shaped Eq. 4
/// total, and the whole shaped execution is bit-identical under replay.
#[test]
fn shaping_collapses_rank_inference() {
    check("shaping_collapses_rank_inference", 42, |seed| {
        let wall = Instant::now();
        let (campaign, median_charge, report) = rank_inference_campaign(seed, true);
        let (campaign2, median_charge2, report2) = rank_inference_campaign(seed, true);

        // Determinism with shaping ON: jitter is a pure function of
        // (shaping seed, query nonce, tuple key), so a same-seed rerun is
        // bit-identical down to the wire digest.
        assert_eq!(
            campaign.world().digest(),
            campaign2.world().digest(),
            "same seed must give identical shaped executions"
        );
        assert_eq!(median_charge.to_bits(), median_charge2.to_bits());
        assert_eq!(
            report.sweep.total_charged_secs.to_bits(),
            report2.sweep.total_charged_secs.to_bits()
        );
        assert_eq!(report.tau.to_bits(), report2.tau.to_bits());

        // The collapse: |τ| within the ISSUE bound, and close to the
        // re-derived cross-bucket ceiling.
        let ceiling = campaign.analytic_tau_ceiling();
        assert!(ceiling < 0.12, "bucket geometry ceiling {ceiling}");
        assert!(
            report.tau.abs() <= 0.15,
            "shaped τ must collapse, got {}",
            report.tau
        );
        assert!(
            (report.tau - ceiling).abs() <= 0.08,
            "shaped τ {} should track the analytic ceiling {ceiling}",
            report.tau
        );
        // Tail recall falls to chance (~k/bucket ≈ 0.13), far below the
        // control's ≥ 0.9.
        assert!(
            report.tail_recall <= 0.40,
            "shaped tail recall must be near chance, got {}",
            report.tail_recall
        );

        // Shaping may only raise prices, never serve early.
        assert!(report.sweep.min_margin_secs >= -1e-6);
        assert!(report.sweep.total_charged_secs > campaign.analytic_total());

        // Economics stay on the *re-derived* closed forms.
        assert_close(
            median_charge,
            campaign.analytic_shaped_median_user_delay(),
            0.10,
            "shaped median-user delay (shaped Eq. 3)",
        );
        assert_close(
            report.sweep.total_charged_secs,
            campaign.analytic_shaped_total(),
            0.10,
            "shaped adversary total (shaped Eq. 4)",
        );

        let elapsed = wall.elapsed().as_secs_f64();
        assert!(
            elapsed < 20.0,
            "campaign must stay fast, took {elapsed:.2}s"
        );
    });
}

/// The adaptive attacker: probe 32 random tuples, fit the delay-vs-rank
/// power law by matching sorted probe delays to rank order statistics,
/// then sweep and target the slowest-looking eighth. Unshaped it recovers
/// a steep law (true exponent α + β = 2) and captures the tail; shaped,
/// targeting collapses to chance and the whole attack costs several times
/// more.
#[test]
fn adaptive_attacker_only_profits_unshaped() {
    check("adaptive_attacker_only_profits_unshaped", 43, |seed| {
        let wall = Instant::now();
        // k = n/8: the popularity tracker's rank sketch bands ~16
        // adjacent tail ranks together (delays are flat within a band),
        // so the band straddling the cutoff must stay a small fraction
        // of k for the control capture to be sharp.
        let tail_k = 128;

        let mut control = Campaign::new(seed, CampaignParams::sidechannel(false));
        let open = control.adaptive_probe_attack(PROBER_IP, 32, tail_k);
        assert!(
            open.fitted_exponent > 1.0 && open.fitted_exponent < 3.0,
            "control fit should recover a steep power law (α+β = 2), got {}",
            open.fitted_exponent
        );
        assert!(
            open.tail_capture >= 0.9,
            "control targeting must capture the tail, got {}",
            open.tail_capture
        );
        assert!(open.sweep.min_margin_secs >= -1e-6);

        let mut shaped = Campaign::new(seed, CampaignParams::sidechannel(true));
        let defended = shaped.adaptive_probe_attack(PROBER_IP, 32, tail_k);
        // No assertion on the shaped fitted exponent: a probe set that
        // happens to straddle the bucket boundary still yields a steep
        // two-level "fit" — the collapse shows up where it matters, in
        // targeting accuracy and price.
        assert!(
            defended.tail_capture <= 0.40,
            "shaped targeting must fall to chance, got {}",
            defended.tail_capture
        );
        assert!(defended.sweep.min_margin_secs >= -1e-6);
        let price_ratio = defended.sweep.total_charged_secs / open.sweep.total_charged_secs;
        assert!(
            price_ratio >= 2.5,
            "shaping must make the attack several times pricier, ratio {price_ratio:.2}"
        );

        let elapsed = wall.elapsed().as_secs_f64();
        assert!(
            elapsed < 20.0,
            "campaign must stay fast, took {elapsed:.2}s"
        );
    });
}

/// Disabled shaping is inert end to end: a control world whose (disabled)
/// shaping carries arbitrary geometry and seed produces the bit-identical
/// wire digest of a plain control world — the pre-PR behavior — while an
/// *enabled* shaping visibly changes the trace.
#[test]
fn disabled_shaping_is_inert_end_to_end() {
    check("disabled_shaping_is_inert_end_to_end", 44, |seed| {
        let short_crawl = |params: CampaignParams| {
            let mut campaign = Campaign::new(seed, params);
            let ranks: Vec<u64> = (1..=32).collect();
            let report = campaign.crawl_observations(CRAWLER_IP, &ranks);
            (campaign.world().digest(), report.total_charged_secs)
        };

        let (plain_digest, plain_total) = short_crawl(CampaignParams::sidechannel(false));

        // Same world, but the disabled knob carries a loud geometry.
        let mut loud_but_off = CampaignParams::sidechannel(false);
        let mut s = DelayShaping::new(123.0, 7.0, 0.5, 0xDEAD_BEEF);
        s.enabled = false;
        loud_but_off.shaping = s;
        let (off_digest, off_total) = short_crawl(loud_but_off);
        assert_eq!(
            plain_digest, off_digest,
            "disabled shaping must not perturb the execution"
        );
        assert_eq!(plain_total.to_bits(), off_total.to_bits());

        // And the enabled defense actually changes the wire trace.
        let (shaped_digest, shaped_total) = short_crawl(CampaignParams::sidechannel(true));
        assert_ne!(plain_digest, shaped_digest);
        assert!(shaped_total > plain_total);
    });
}

/// Randomized-robustness sweep: for several seeds, the shaped campaign
/// replays bit-identically and the collapse + economics bounds hold.
#[test]
fn shaped_campaigns_replay_across_seeds() {
    check_seeds(
        "shaped_campaigns_replay_across_seeds",
        &[2004, 0x51DE],
        |seed| {
            let (campaign, median_charge, report) = rank_inference_campaign(seed, true);
            let (campaign2, median_charge2, report2) = rank_inference_campaign(seed, true);
            assert_eq!(campaign.world().digest(), campaign2.world().digest());
            assert_eq!(median_charge.to_bits(), median_charge2.to_bits());
            assert_eq!(report.tau.to_bits(), report2.tau.to_bits());
            assert!(report.tau.abs() <= 0.15, "τ = {}", report.tau);
            assert!(report.tail_recall <= 0.40);
            assert!(report.sweep.min_margin_secs >= -1e-6);
            assert_close(
                report.sweep.total_charged_secs,
                campaign.analytic_shaped_total(),
                0.10,
                "shaped adversary total",
            );
        },
    );
}
