//! §2.4 adversary campaigns in virtual time, asserted against the
//! paper's closed forms: a 30+-day sequential extraction crawl (Eq. 3/4),
//! the Sybil swarm racing the registration interval (§2.4's k·t + T/k
//! economics), the per-/24 subnet-aggregated swarm, and a
//! popularity-aware crawler demonstrating that delay concentrates on the
//! unpopular tail. Each campaign runs in seconds of wall clock; every
//! failure prints a `TESTKIT_REPLAY=<seed>` command.

use delayguard_core::analysis;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_testkit::{check, check_seeds, Campaign, CampaignParams, CrawlReport};
use std::time::Instant;

const DAY_SECS: f64 = 86_400.0;

fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() <= tol * expected.abs(),
        "{what}: measured {actual}, expected {expected} (±{:.0}%)",
        tol * 100.0
    );
}

/// One full sequential extraction campaign: a user probe at the median
/// rank, then the crawl of all n tuples. Returns the probe's charged
/// delay, the crawl report, the world digest, and the real elapsed time.
fn sequential_campaign(seed: u64) -> (f64, CrawlReport, u64, f64) {
    let wall = Instant::now();
    let mut campaign = Campaign::new(seed, CampaignParams::default());
    let median = campaign.median_rank();
    let probe = campaign.sequential_crawl([172, 16, 0, 1], &[median]);
    let ranks = campaign.all_ranks();
    let crawl = campaign.sequential_crawl([10, 0, 0, 1], &ranks);
    (
        probe.total_delay_secs,
        crawl,
        campaign.world().digest(),
        wall.elapsed().as_secs_f64(),
    )
}

/// The acceptance campaign: >30 simulated days of sequential extraction
/// in seconds of wall clock, bit-identical across two same-seed runs,
/// with the measured adversary-to-user delay ratio within 10% of Eq. 4.
#[test]
fn thirty_day_sequential_campaign_matches_eq4() {
    check("thirty_day_sequential_campaign_matches_eq4", 2004, |seed| {
        let (user_delay, crawl, digest, elapsed) = sequential_campaign(seed);
        let (user_delay2, crawl2, digest2, elapsed2) = sequential_campaign(seed);

        // Reproducibility: the two runs are bit-identical.
        assert_eq!(digest, digest2, "same seed must give identical executions");
        assert_eq!(user_delay.to_bits(), user_delay2.to_bits());
        assert_eq!(
            crawl.total_delay_secs.to_bits(),
            crawl2.total_delay_secs.to_bits()
        );
        assert_eq!(
            crawl.finished_secs.to_bits(),
            crawl2.finished_secs.to_bits()
        );

        // Scale: a month-plus of simulated campaign, seconds of wall.
        let campaign = Campaign::new(seed, CampaignParams::default());
        let n = campaign.params().n;
        assert_eq!(crawl.queries, n);
        assert_eq!(crawl.tuples, n);
        assert!(
            crawl.wall_secs() >= 30.0 * DAY_SECS,
            "campaign spanned only {:.1} simulated days",
            crawl.wall_secs() / DAY_SECS
        );
        assert!(
            elapsed < 5.0 && elapsed2 < 5.0,
            "a 30-day campaign must run in <5s wall, took {elapsed:.2}s / {elapsed2:.2}s"
        );

        // Eq. 3: the crawl's charged total matches the closed form.
        assert_close(
            crawl.total_delay_secs,
            campaign.analytic_total(),
            0.10,
            "adversary total delay",
        );
        // The crawl's *wall* time is the charged total plus wheel
        // rounding — same closed form.
        assert_close(
            crawl.wall_secs(),
            campaign.analytic_total(),
            0.10,
            "adversary wall time",
        );
        // The median user's single query.
        assert_close(
            user_delay,
            campaign.analytic_delay_at_rank(campaign.median_rank()),
            0.10,
            "median user delay",
        );
        // Eq. 4: the asymmetry ratio.
        assert_close(
            crawl.total_delay_secs / user_delay,
            campaign.analytic_ratio(),
            0.10,
            "adversary-to-user delay ratio (Eq. 4)",
        );
        // Enforcement is never early, and nothing was refused (the
        // gatekeeper is open; the delay policy is the only brake).
        assert!(crawl.min_margin_secs >= -1e-6, "a tuple was released early");
        assert_eq!(crawl.refused, 0);
    });
}

/// The Sybil swarm: k identities register serially (paying the
/// registration interval t each) and crawl stripes concurrently. With
/// t chosen by `registration_interval_for` for a 2× slowdown target and
/// k at the optimum √(T/t), the measured wall matches the
/// (k−1)·t + max-stripe prediction and lands in the band the paper's
/// 2√(t·T) economics promise.
#[test]
fn sybil_swarm_pays_the_registration_interval() {
    check("sybil_swarm_pays_the_registration_interval", 2005, |seed| {
        let wall = Instant::now();
        let mut params = CampaignParams::default();
        let probe = Campaign::new(seed, params.clone());
        let total = probe.analytic_total();
        let t_register = analysis::registration_interval_for(total, 0.5);
        let (k_opt, optimum_wall) = analysis::sybil_optimum(total, t_register);
        let k = k_opt.round() as usize;
        assert_eq!(k, 4, "the worked example sits at k=4");
        params.gatekeeper.registration = RegistrationPolicy::interval(t_register);

        let mut campaign = Campaign::new(seed, params);
        let ranks = campaign.all_ranks();
        let report = campaign.swarm_crawl(&Campaign::sybil_ips(k as u64), &ranks);

        // Serial registration: each identity after the first is refused
        // exactly once and admitted exactly t later.
        assert_eq!(report.identities, k as u64);
        assert_eq!(report.registration_refusals, (k - 1) as u64);
        assert_close(
            report.registration_wall_secs(),
            (k - 1) as f64 * t_register,
            0.01,
            "registration wall",
        );

        // The swarm still pays the full extraction total in charged
        // delay — parallelism buys wall time, not delay.
        assert_close(report.total_delay_secs, total, 0.10, "swarm charged total");
        assert_eq!(report.tuples, campaign.params().n);

        // Wall prediction: registration plus the slowest stripe.
        let slowest_stripe = (0..k)
            .map(|j| {
                (1..=campaign.params().n)
                    .filter(|rank| (*rank as usize - 1) % k == j)
                    .map(|rank| campaign.analytic_delay_at_rank(rank))
                    .sum::<f64>()
            })
            .fold(0.0, f64::max);
        let predicted = (k - 1) as f64 * t_register + slowest_stripe;
        assert_close(report.wall_secs(), predicted, 0.10, "sybil campaign wall");

        // The paper's economics: the swarm beats sequential by about the
        // engineered factor, but cannot beat the 2√(t·T) bound by much —
        // the registration interval is doing its job.
        assert!(
            report.wall_secs() < 0.55 * total,
            "swarm wall {:.0}s should beat sequential {total:.0}s by ~2x",
            report.wall_secs()
        );
        assert!(
            report.wall_secs() > 0.75 * optimum_wall,
            "swarm wall {:.0}s far below the 2sqrt(tT) bound {optimum_wall:.0}s",
            report.wall_secs()
        );
        assert!(
            report.min_margin_secs >= -1e-6,
            "a tuple was released early"
        );
        assert!(
            wall.elapsed().as_secs_f64() < 5.0,
            "sybil campaign must run in <5s wall"
        );
    });
}

/// Subnet aggregation: the same 8-identity swarm is throttled to the
/// /24's aggregate rate when clustered, but fans out to per-user rates
/// when spread — clustered extraction takes >4x longer.
#[test]
fn clustered_swarm_is_throttled_by_subnet_aggregation() {
    check(
        "clustered_swarm_is_throttled_by_subnet_aggregation",
        2006,
        |seed| {
            let params = CampaignParams {
                n: 200,
                cap_secs: 0.05,
                tick: std::time::Duration::from_millis(1),
                gatekeeper: GatekeeperConfig {
                    per_user_rate: 20.0,
                    per_user_burst: 1.0,
                    per_subnet_rate: 5.0,
                    per_subnet_burst: 1.0,
                    registration: RegistrationPolicy::interval(0.0),
                    storefront_query_threshold: 0,
                },
                ..CampaignParams::default()
            };
            let k = 8;

            let mut clustered = Campaign::new(seed, params.clone());
            let ranks = clustered.all_ranks();
            let clustered_report = clustered.swarm_crawl(&Campaign::clustered_ips(k), &ranks);

            let mut spread = Campaign::new(seed, params);
            let spread_report = spread.swarm_crawl(&Campaign::sybil_ips(k), &ranks);

            // Both extract everything...
            assert_eq!(clustered_report.tuples, 200);
            assert_eq!(spread_report.tuples, 200);
            // ...but the clustered swarm is held to the subnet's 5 q/s:
            // 200 queries take at least ~40 virtual seconds.
            assert!(
                clustered_report.wall_secs() > 35.0,
                "clustered swarm finished in {:.1}s, subnet rate not enforced",
                clustered_report.wall_secs()
            );
            assert!(
                clustered_report.wall_secs() > 4.0 * spread_report.wall_secs(),
                "clustered {:.1}s vs spread {:.1}s: aggregation should cost >4x",
                clustered_report.wall_secs(),
                spread_report.wall_secs()
            );
            // The throttle works through explicit refusals with hints, all
            // honored (no tuple lost, nothing early).
            assert!(clustered_report.refused_queries > 0);
            assert!(clustered_report.min_margin_secs >= -1e-6);
            assert!(spread_report.min_margin_secs >= -1e-6);
        },
    );
}

/// A popularity-aware adversary and an honest Zipf user, against the
/// same closed forms: the popular head is almost free (delay lives in
/// the tail), and a Zipf-sampled workload's charged total matches the
/// per-rank analytic sum.
#[test]
fn popularity_aware_crawls_match_the_analytics() {
    check_seeds(
        "popularity_aware_crawls_match_the_analytics",
        &[31, 32],
        |seed| {
            let mut campaign = Campaign::new(seed, CampaignParams::default());
            let n = campaign.params().n;

            // The popular head: 100 of 1100 tuples for ~0.1% of the
            // full-crawl delay bill.
            let head: Vec<u64> = (1..=100).collect();
            let head_analytic: f64 = head
                .iter()
                .map(|&r| campaign.analytic_delay_at_rank(r))
                .sum();
            let head_report = campaign.sequential_crawl([10, 9, 0, 1], &head);
            assert_close(
                head_report.total_delay_secs,
                head_analytic,
                0.10,
                "popular-head crawl total",
            );
            assert!(
                head_report.total_delay_secs < 0.01 * campaign.analytic_total(),
                "the head must be cheap: delay concentrates on the tail"
            );

            // An honest user sampling ranks from Zipf(alpha): the charged
            // total matches the analytic delay of those exact ranks.
            let sampled = campaign.zipf_ranks(300);
            let sampled_analytic: f64 = sampled
                .iter()
                .map(|&r| campaign.analytic_delay_at_rank(r))
                .sum();
            let user_report = campaign.sequential_crawl([172, 16, 5, 1], &sampled);
            assert_eq!(user_report.queries, 300);
            assert_close(
                user_report.total_delay_secs,
                sampled_analytic,
                0.10,
                "zipf user charged total",
            );
            // Per-query, the Zipf user pays far less than the crawler's
            // per-tuple average — the policy's whole point.
            let user_mean = user_report.total_delay_secs / 300.0;
            let crawler_mean = campaign.analytic_total() / n as f64;
            assert!(
                user_mean < 0.5 * crawler_mean,
                "zipf user mean {user_mean:.1}s vs crawler mean {crawler_mean:.1}s"
            );
            assert!(user_report.min_margin_secs >= -1e-6);
        },
    );
}
