//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's benches target criterion's API but the build container
//! has no network access, so this shim provides the subset they use:
//! `Criterion`, `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical machinery
//! it runs a short warm-up plus a fixed measurement loop and prints
//! median per-iteration time — enough to compare orders of magnitude and
//! to keep `cargo check --benches` honest.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from just a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..self.iters.min(3) {
            black_box(routine());
        }
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size,
        elapsed: Vec::new(),
    };
    f(&mut b);
    b.elapsed.sort();
    let median = b
        .elapsed
        .get(b.elapsed.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench: {label:<50} median {median:>12.3?} ({} samples)",
        b.elapsed.len()
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each bench runs (criterion's
    /// `sample_size`; clamped to at least 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Measurement-time hint; accepted for API compatibility, unused.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<ID: fmt::Display, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<ID: fmt::Display, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; groups report per-bench).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: u64,
}

impl Criterion {
    /// Parse command-line arguments (accepted and ignored: the shim runs
    /// every bench it is given, so `cargo bench` filters don't apply).
    pub fn configure_from_args(mut self) -> Criterion {
        self.default_sample_size = 10;
        self
    }

    /// Begin a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declare the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("g");
        let mut count = 0u64;
        group.sample_size(5).bench_function("inc", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.finish();
        assert!(count >= 5);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
