//! Shimmed `std::sync` types: atomics whose every operation is a schedule
//! point, and an `Arc` whose clone/drop are schedule points.
//!
//! The shims model **sequentially consistent interleavings only**: the
//! `Ordering` argument is accepted for API compatibility but every
//! operation executes `SeqCst`, and `compare_exchange_weak` never fails
//! spuriously. Weak-memory reorderings are out of scope (they are covered
//! in CI by ThreadSanitizer and by the repo lint that rejects `Relaxed`
//! pointer-publishing stores); what the model explores exhaustively is
//! the *interleaving* of operations, which is where lost updates, ABA
//! races, and use-after-free protocols actually break.

pub use std::sync::atomic::Ordering;

use crate::sched::yield_point;

macro_rules! atomic_int {
    ($name:ident, $std:ty, $int:ty) => {
        /// Model-checked atomic integer: same API as the `std` type, every
        /// op a schedule point, all orderings upgraded to `SeqCst`.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub const fn new(v: $int) -> $name {
                $name {
                    inner: <$std>::new(v),
                }
            }

            pub fn load(&self, _order: Ordering) -> $int {
                yield_point();
                self.inner.load(Ordering::SeqCst)
            }

            pub fn store(&self, v: $int, _order: Ordering) {
                yield_point();
                self.inner.store(v, Ordering::SeqCst)
            }

            pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                yield_point();
                self.inner.swap(v, Ordering::SeqCst)
            }

            pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                yield_point();
                self.inner.fetch_add(v, Ordering::SeqCst)
            }

            pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                yield_point();
                self.inner.fetch_sub(v, Ordering::SeqCst)
            }

            pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                yield_point();
                self.inner.fetch_max(v, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$int, $int> {
                yield_point();
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Like the strong version: the model does not explore
            /// spurious failures.
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);

/// Model-checked atomic bool: same API as the `std` type, every op a
/// schedule point, all orderings upgraded to `SeqCst`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    pub fn load(&self, _order: Ordering) -> bool {
        yield_point();
        self.inner.load(Ordering::SeqCst)
    }

    pub fn store(&self, v: bool, _order: Ordering) {
        yield_point();
        self.inner.store(v, Ordering::SeqCst)
    }

    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        yield_point();
        self.inner.swap(v, Ordering::SeqCst)
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        yield_point();
        self.inner
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

/// Model-checked `AtomicPtr`: same API as `std::sync::atomic::AtomicPtr`,
/// every op a schedule point, all orderings upgraded to `SeqCst`.
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

// Like std's AtomicPtr, Debug prints the pointer and needs no `T: Debug`
// (a derive would add that bound).
impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    pub fn load(&self, _order: Ordering) -> *mut T {
        yield_point();
        self.inner.load(Ordering::SeqCst)
    }

    pub fn store(&self, p: *mut T, _order: Ordering) {
        yield_point();
        self.inner.store(p, Ordering::SeqCst)
    }

    pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
        yield_point();
        self.inner.swap(p, Ordering::SeqCst)
    }

    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        yield_point();
        self.inner
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Like the strong version: the model does not explore spurious
    /// failures.
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(current, new, success, failure)
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> AtomicPtr<T> {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

/// Model-checked `Arc`: a thin wrapper over `std::sync::Arc` whose clone
/// and drop are schedule points, so refcount traffic interleaves with the
/// operations under test.
pub struct Arc<T> {
    inner: Option<std::sync::Arc<T>>,
}

impl<T> Arc<T> {
    pub fn new(v: T) -> Arc<T> {
        Arc {
            inner: Some(std::sync::Arc::new(v)),
        }
    }

    fn get(&self) -> &std::sync::Arc<T> {
        self.inner
            .as_ref()
            .expect("loom_lite: Arc used after teardown")
    }

    pub fn strong_count(this: &Arc<T>) -> usize {
        std::sync::Arc::strong_count(this.get())
    }

    pub fn ptr_eq(a: &Arc<T>, b: &Arc<T>) -> bool {
        std::sync::Arc::ptr_eq(a.get(), b.get())
    }
}

impl<T> Clone for Arc<T> {
    fn clone(&self) -> Arc<T> {
        yield_point();
        Arc {
            inner: Some(std::sync::Arc::clone(self.get())),
        }
    }
}

impl<T> Drop for Arc<T> {
    fn drop(&mut self) {
        yield_point();
        self.inner.take();
    }
}

impl<T> std::ops::Deref for Arc<T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.get()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.get().fmt(f)
    }
}
