//! Schedule exploration: run a closure under every interleaving (up to a
//! preemption bound), depth-first, and report the first failing schedule
//! as a replayable seed.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use crate::sched::{self, Branch, Execution};

/// Exploration limits. The defaults exhaust small tests (2–3 threads, a
/// handful of operations each) in well under a second.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of *preemptions* per execution — involuntary
    /// context switches away from a runnable thread. Voluntary switch
    /// points (spawn, join, yield) never consume budget. 2–3 finds the
    /// overwhelming majority of real concurrency bugs (CHESS's result);
    /// raise it for stronger guarantees on tiny tests.
    pub preemption_bound: usize,
    /// Stop (and fail) after this many executions: a runaway-state-space
    /// backstop, not a sampling knob.
    pub max_executions: usize,
    /// Per-execution switch budget: trips on livelocks (e.g. a spin loop
    /// that never calls `thread::yield_now`).
    pub max_switches: usize,
    /// Replay exactly one schedule instead of exploring: the branch
    /// choices printed by a failure report.
    pub replay: Option<Vec<usize>>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            max_executions: 20_000,
            max_switches: 100_000,
            replay: None,
        }
    }
}

/// A completed exploration.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Number of distinct schedules executed.
    pub executions: usize,
}

/// A failing schedule.
pub struct Failure {
    /// Branch choices reproducing the failure (`Config::replay` /
    /// `LOOM_LITE_REPLAY`).
    pub schedule: Vec<usize>,
    /// Executions run before the failure surfaced.
    pub executions: usize,
    /// What went wrong, human-readable.
    pub message: String,
    /// The original panic payload, when the failure was a panic — so
    /// `#[should_panic(expected = ...)]` keeps matching through the model
    /// harness.
    pub payload: Option<Box<dyn std::any::Any + Send>>,
}

impl std::fmt::Debug for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Failure")
            .field("schedule", &self.schedule)
            .field("executions", &self.executions)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

/// Render a schedule the way `LOOM_LITE_REPLAY` wants it back.
pub fn schedule_string(schedule: &[usize]) -> String {
    schedule
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Explore every schedule of `f` (bounded by `cfg`), returning stats on
/// success or the first failing schedule. `f` runs once per schedule and
/// must be deterministic apart from thread interleaving.
pub fn check<F: Fn()>(cfg: Config, f: F) -> Result<Stats, Failure> {
    let mut replay: Vec<usize> = cfg.replay.clone().unwrap_or_default();
    let replay_only = cfg.replay.is_some();
    let mut executions = 0usize;
    loop {
        executions += 1;
        if executions > cfg.max_executions {
            return Err(Failure {
                schedule: replay,
                executions: executions - 1,
                message: format!(
                    "more than {} schedules: state space too large \
                     (shrink the test or lower preemption_bound)",
                    cfg.max_executions
                ),
                payload: None,
            });
        }
        let exec = Arc::new(Execution::new(
            replay.clone(),
            cfg.preemption_bound,
            cfg.max_switches,
        ));
        let trace = match one_execution(&exec, &f) {
            Ok(trace) => trace,
            Err((message, payload)) => {
                return Err(Failure {
                    schedule: exec.trace().iter().map(|b| b.chosen).collect(),
                    executions,
                    message,
                    payload,
                });
            }
        };
        if replay_only {
            return Ok(Stats { executions });
        }
        // Depth-first advance: bump the deepest branch with an untried
        // option, drop everything below it.
        let mut prefix: Vec<Branch> = trace;
        loop {
            match prefix.last_mut() {
                None => return Ok(Stats { executions }),
                Some(b) if b.chosen + 1 < b.options => {
                    b.chosen += 1;
                    break;
                }
                Some(_) => {
                    prefix.pop();
                }
            }
        }
        replay = prefix.iter().map(|b| b.chosen).collect();
    }
}

type ExecError = (String, Option<Box<dyn std::any::Any + Send>>);

/// Run one schedule to completion. Ok carries the branch trace for DFS.
fn one_execution<F: Fn()>(exec: &Arc<Execution>, f: &F) -> Result<Vec<Branch>, ExecError> {
    sched::install(Arc::clone(exec), 0);
    let result = std::panic::catch_unwind(AssertUnwindSafe(f));
    match result {
        Ok(()) => {
            exec.thread_exit(0);
            exec.wait_all_finished();
            exec.join_all();
            sched::uninstall();
            if let Some(msg) = exec.abort_message() {
                return Err((msg, None));
            }
            let unjoined = exec.unjoined_panics();
            if let Some(&tid) = unjoined.first() {
                if let Some(Err(payload)) = exec.take_result(tid) {
                    return Err((
                        format!("thread {tid} panicked (never joined)"),
                        Some(payload),
                    ));
                }
                return Err((format!("thread {tid} panicked (never joined)"), None));
            }
            let leaked = exec
                .allocations
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len();
            if leaked != 0 {
                return Err((
                    format!("leak: {leaked} tracked allocation(s) still live at end of execution"),
                    None,
                ));
            }
            Ok(exec.trace())
        }
        Err(payload) => {
            exec.abort("main thread panicked");
            exec.join_all();
            sched::uninstall();
            let message = exec
                .abort_message()
                .filter(|m| m != "main thread panicked")
                .unwrap_or_else(|| {
                    format!("main thread panicked: {}", payload_str(payload.as_ref()))
                });
            Err((message, Some(payload)))
        }
    }
}

fn payload_str(p: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// [`check`] with defaults, panicking on failure with a replayable
/// schedule printed to stderr. The original panic payload is re-raised,
/// so `#[should_panic(expected = ...)]` works through the harness.
pub fn run<F: Fn()>(f: F) {
    run_with(Config::default(), f);
}

/// [`run`] with explicit limits. Honors `LOOM_LITE_REPLAY="2,0,1"` from
/// the environment to pin a single schedule.
pub fn run_with<F: Fn()>(mut cfg: Config, f: F) {
    if cfg.replay.is_none() {
        if let Ok(s) = std::env::var("LOOM_LITE_REPLAY") {
            let parsed: Result<Vec<usize>, _> = s
                .split(',')
                .filter(|p| !p.is_empty())
                .map(str::parse)
                .collect();
            match parsed {
                Ok(v) => cfg.replay = Some(v),
                Err(e) => panic!("loom_lite: bad LOOM_LITE_REPLAY {s:?}: {e}"),
            }
        }
    }
    match check(cfg, f) {
        Ok(stats) => {
            eprintln!("loom_lite: ok — {} schedule(s) explored", stats.executions);
        }
        Err(failure) => {
            eprintln!(
                "loom_lite: FAILED on schedule [{}] (execution #{}): {}\n\
                 loom_lite: replay it with LOOM_LITE_REPLAY={} or Config {{ replay: Some(vec![{}]), .. }}",
                schedule_string(&failure.schedule),
                failure.executions,
                failure.message,
                schedule_string(&failure.schedule),
                schedule_string(&failure.schedule),
            );
            match failure.payload {
                Some(p) => std::panic::resume_unwind(p),
                None => panic!("loom_lite: {}", failure.message),
            }
        }
    }
}
