//! Tracked-allocation registry: exactly-once-free checking for code that
//! manages raw pointers (e.g. an `Arc::into_raw`-based snapshot cell).
//!
//! Instrumented code calls [`register`] when it publishes an allocation,
//! [`assert_live`] before relying on one, and [`retire`] at the moment no
//! other thread may touch it again (just before the actual free). The
//! model then catches, per explored schedule:
//!
//! * **use-after-free** — `assert_live` on a retired address panics;
//! * **double-free** — a second `retire` of the same address panics;
//! * **leaks** — addresses still registered when the execution ends fail
//!   the schedule (checked by `model::check`).
//!
//! Outside a model run every function is a no-op, so instrumentation can
//! live permanently in `#[cfg(delayguard_model)]` code paths without
//! affecting production builds.

use crate::sched;

fn with_registry<R>(
    f: impl FnOnce(&mut std::collections::HashMap<usize, usize>) -> R,
) -> Option<R> {
    let (exec, _) = sched::current()?;
    let mut map = exec
        .allocations
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Some(f(&mut map))
}

/// Record `p` as a live tracked allocation. Counted: registering the same
/// address twice requires retiring it twice.
pub fn register<T>(p: *const T) {
    let addr = p as usize;
    with_registry(|map| {
        *map.entry(addr).or_insert(0) += 1;
    });
}

/// Panic (failing the schedule) if `p` is not currently live.
pub fn assert_live<T>(p: *const T) {
    let addr = p as usize;
    with_registry(|map| {
        assert!(
            map.get(&addr).copied().unwrap_or(0) > 0,
            "loom_lite: use of retired allocation {addr:#x} (use-after-free)"
        );
    });
}

/// Mark `p` as no longer reachable by other threads; the next
/// `assert_live` of it fails, as does retiring it again (double-free).
pub fn retire<T>(p: *const T) {
    let addr = p as usize;
    with_registry(|map| match map.get_mut(&addr) {
        Some(n) if *n > 1 => *n -= 1,
        Some(_) => {
            map.remove(&addr);
        }
        None => panic!("loom_lite: retire of allocation {addr:#x} that is not live (double-free?)"),
    });
}

/// Number of live tracked allocations (0 outside a model run).
pub fn live_count() -> usize {
    with_registry(|map| map.values().sum()).unwrap_or(0)
}
