//! # loom-lite
//!
//! A minimal, fully self-contained deterministic concurrency model
//! checker in the spirit of [`loom`](https://docs.rs/loom) — vendored
//! because this build environment is offline (see `vendor/README.md`).
//!
//! ## What it does
//!
//! [`model::run`] executes a closure under **every thread interleaving**
//! reachable within a bounded number of preemptions, by:
//!
//! 1. running the closure and any [`thread::spawn`]ed threads as real OS
//!    threads that pass a single baton — exactly one runs at a time;
//! 2. treating every operation on the shimmed [`sync`] atomics (and
//!    spawn/join/yield) as a schedule point where the baton may move;
//! 3. exploring the resulting decision tree depth-first, replaying each
//!    schedule deterministically from its branch-choice prefix.
//!
//! A failing schedule (panic, deadlock, livelock, tracked-allocation leak
//! or use-after-free) is reported as a replayable seed: the printed
//! `LOOM_LITE_REPLAY=…` choices pin the exact interleaving for debugging.
//!
//! ## What it checks vs. assumes
//!
//! * **Checked**: all sequentially consistent interleavings at the
//!   instrumented points, up to `Config::preemption_bound` involuntary
//!   switches per execution (voluntary points — spawn, join, yield — are
//!   always free). Lost updates, ordering violations, ABA-style races,
//!   use-after-free / double-free / leaks of [`alloc`]-tracked pointers.
//! * **Assumed**: weak-memory effects (all orderings upgrade to
//!   `SeqCst`), spurious `compare_exchange_weak` failures, and code that
//!   synchronizes through anything other than the shims.
//!
//! ## Usage shape
//!
//! Production code imports its atomics through a facade module that
//! resolves to `std::sync` normally and to `loom_lite::sync` under
//! `--cfg delayguard_model` + the crate's `model` feature; model tests
//! then drive the *same* source through [`model::run`].
//!
//! ```ignore
//! loom_lite::model::run(|| {
//!     let q = std::sync::Arc::new(ShardedEventQueue::new(2));
//!     let q2 = std::sync::Arc::clone(&q);
//!     let t = loom_lite::thread::spawn(move || { q2.push(1); });
//!     let drained = q.drain();
//!     t.join().unwrap();
//!     // assertions hold on EVERY explored schedule
//! });
//! ```

#![deny(unsafe_code)]

pub mod alloc;
pub mod model;
mod sched;
pub mod sync;
pub mod thread;

/// An explicit schedule point marking a place where the OS could preempt
/// the thread between two steps that are *not* themselves instrumented —
/// e.g. between reading a raw pointer out of an atomic and taking a
/// reference through it. Without such a marker the model treats the gap
/// as atomic (each shimmed operation only cedes the baton *before* it
/// runs), and races that strike inside the gap stay invisible. A no-op
/// outside a model run; native facades should compile it to nothing.
pub fn preemption_point() {
    sched::yield_point();
}

#[cfg(test)]
mod tests {
    use crate::model::{self, Config};
    use crate::sync::{AtomicUsize, Ordering};
    use crate::thread;
    use std::sync::Arc;

    /// Two unsynchronized read-modify-writes: the model must find the
    /// lost-update interleaving (load/load/store/store).
    #[test]
    #[should_panic(expected = "lost update")]
    fn finds_lost_update() {
        model::run(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    }

    /// The same counter with a real RMW never loses an update, on any
    /// schedule.
    #[test]
    fn fetch_add_never_loses() {
        model::run(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
    }

    /// Exploration actually branches: two racing single ops have more
    /// than one schedule.
    #[test]
    fn explores_multiple_schedules() {
        let stats = model::check(Config::default(), || {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(2, Ordering::SeqCst);
            t.join().unwrap();
        })
        .expect("no failure");
        assert!(stats.executions > 1, "expected branching, got {stats:?}");
    }

    /// A failing schedule replays to the same failure: the seed printed
    /// on failure deterministically reproduces it.
    #[test]
    fn failing_schedule_replays() {
        let body = || {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        };
        let failure = model::check(Config::default(), body).expect_err("must find the race");
        let replayed = model::check(
            Config {
                replay: Some(failure.schedule.clone()),
                ..Config::default()
            },
            body,
        )
        .expect_err("replay must reproduce the failure");
        assert_eq!(replayed.schedule, failure.schedule);
        assert_eq!(replayed.executions, 1, "replay runs exactly one schedule");
    }

    /// Spin loops written with `yield_now` terminate: the spinner is
    /// deprioritized until the thread that can change the condition runs.
    #[test]
    fn yield_spin_loop_terminates() {
        model::run(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            let t = thread::spawn(move || {
                f2.store(1, Ordering::SeqCst);
            });
            while flag.load(Ordering::SeqCst) == 0 {
                thread::yield_now();
            }
            t.join().unwrap();
        });
    }

    /// The shimmed Arc drops its payload exactly once across schedules.
    #[test]
    fn shim_arc_drops_once() {
        struct Bump(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        model::run(|| {
            let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let payload = crate::sync::Arc::new(Bump(Arc::clone(&drops)));
            let p2 = payload.clone();
            let t = thread::spawn(move || drop(p2));
            drop(payload);
            t.join().unwrap();
            assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 1);
        });
    }

    /// Tracked allocations that are never retired fail the schedule.
    #[test]
    #[should_panic(expected = "leak")]
    fn leak_detection() {
        model::run(|| {
            let b = Box::new(7u32);
            crate::alloc::register(&*b as *const u32);
            // never retired → leak report at end of execution
            std::mem::forget(b);
        });
    }

    /// Retiring twice is reported as a double free.
    #[test]
    #[should_panic(expected = "double-free")]
    fn double_retire_detection() {
        model::run(|| {
            let x = 7u32;
            crate::alloc::register(&x as *const u32);
            crate::alloc::retire(&x as *const u32);
            crate::alloc::retire(&x as *const u32);
        });
    }

    /// Join propagates values and panics like `std`.
    #[test]
    fn join_propagates() {
        model::run(|| {
            let t = thread::spawn(|| 41 + 1);
            assert_eq!(t.join().unwrap(), 42);
            let p = thread::spawn(|| panic!("boom"));
            assert!(p.join().is_err());
        });
    }

    /// Outside `model::run` the shims behave like plain `std` types.
    #[test]
    fn fallback_outside_model() {
        let c = AtomicUsize::new(1);
        assert_eq!(c.fetch_add(1, Ordering::Relaxed), 1);
        assert_eq!(c.load(Ordering::Relaxed), 2);
        let t = thread::spawn(|| 7);
        assert_eq!(t.join().unwrap(), 7);
        thread::yield_now();
        let a = thread::index();
        assert_eq!(a, thread::index());
    }
}
