//! Cooperative `thread::spawn` / `join` / `yield_now` shims.
//!
//! Inside [`crate::model::run`] these participate in the deterministic
//! scheduler; outside it they fall back to plain `std` behaviour, so code
//! compiled against the shims still works in ordinary tests.

use std::panic::AssertUnwindSafe;

use crate::sched::{self, Switch};

enum Inner<T> {
    /// A model thread: resolved through the scheduler.
    Model { tid: usize },
    /// Fallback outside a model run.
    Os(std::thread::JoinHandle<T>),
}

/// Handle to a spawned (model or fallback) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T: Send + 'static> JoinHandle<T> {
    /// Wait for the thread and return its result, `Err` if it panicked —
    /// same contract as `std::thread::JoinHandle::join`. In a model run
    /// this is a *blocking schedule point*: the scheduler explores every
    /// interleaving of the join with the other threads' remaining work.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send>> {
        match self.inner {
            Inner::Os(h) => h.join(),
            Inner::Model { tid } => {
                let (exec, me) = sched::current()
                    .expect("loom_lite: joining a model thread outside its execution");
                while !exec.is_finished(tid) {
                    exec.switch(me, Switch::Join(tid));
                }
                match exec.take_result(tid) {
                    Some(Ok(boxed)) => Ok(*boxed
                        .downcast::<T>()
                        .expect("loom_lite: join result type mismatch")),
                    Some(Err(payload)) => Err(payload),
                    None => panic!("loom_lite: model thread {tid} finished without a result"),
                }
            }
        }
    }
}

/// Spawn a thread. Under the model this registers a new schedulable
/// thread (run strictly one-at-a-time with every other); outside it
/// delegates to `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        None => JoinHandle {
            inner: Inner::Os(std::thread::spawn(f)),
        },
        Some((exec, me)) => {
            let tid = exec.register_thread();
            let exec2 = std::sync::Arc::clone(&exec);
            let os = std::thread::Builder::new()
                .name(format!("loom-lite-{tid}"))
                .spawn(move || {
                    sched::install(std::sync::Arc::clone(&exec2), tid);
                    if exec2.wait_for_baton(tid) {
                        let r = std::panic::catch_unwind(AssertUnwindSafe(f));
                        exec2.store_result(
                            tid,
                            r.map(|v| Box::new(v) as Box<dyn std::any::Any + Send>),
                        );
                    } else {
                        // Execution aborted before this thread ever ran.
                        exec2.store_result(tid, Err(Box::new("loom_lite: aborted before start")));
                    }
                    sched::uninstall();
                    exec2.thread_exit(tid);
                })
                .expect("loom_lite: OS thread spawn failed");
            exec.push_handle(os);
            // The child is schedulable from this point on: branch.
            exec.switch(me, Switch::Op);
            JoinHandle {
                inner: Inner::Model { tid },
            }
        }
    }
}

/// Voluntary yield. Under the model this *deprioritizes* the calling
/// thread until every other runnable thread has yielded, blocked, or
/// exited — which is what keeps spin-wait loops (`while x.load() != 0
/// {{ yield_now() }}`) from exploding the schedule space: the spinner
/// only re-runs once the threads that can change the condition have had
/// their turn.
pub fn yield_now() {
    match sched::current() {
        None => std::thread::yield_now(),
        Some((exec, me)) => exec.switch(me, Switch::Yield),
    }
}

/// The current model thread's index: 0 for the `model::run` closure, then
/// 1, 2, … in spawn order — deterministic per schedule, which is what
/// per-thread striping (e.g. shard selection) needs for replayability.
/// Outside a model run, falls back to a process-wide round-robin
/// assignment per OS thread.
pub fn index() -> usize {
    if let Some((_, tid)) = sched::current() {
        return tid;
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    INDEX.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}
