//! The deterministic scheduler: one baton, many threads, every handoff a
//! recorded decision.
//!
//! An [`Execution`] runs the user's closure plus any threads it spawns as
//! real OS threads, but only ever lets **one** of them run at a time. The
//! running thread holds the baton; at every instrumented operation (an
//! atomic access, a spawn, a join, a yield) it calls [`Execution::switch`],
//! which consults the schedule explorer to pick the next thread and blocks
//! the current one until the baton comes back. Because threads only
//! interleave at these explicit points, an execution is fully determined
//! by the sequence of scheduling choices — which is what makes schedules
//! replayable and the search exhaustive.

use std::collections::HashMap;
use std::panic::{RefUnwindSafe, UnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Lock that shrugs off poisoning: a panicking model thread must not wedge
/// the scheduler, it must *fail the schedule*.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a thread is handing the baton over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Switch {
    /// About to perform an instrumented operation; still runnable.
    Op,
    /// Voluntary yield (`thread::yield_now`): deprioritized until every
    /// other runnable thread has yielded, blocked, or exited.
    Yield,
    /// Blocked joining the given thread id.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Yielded,
    Blocked(usize),
    Finished,
}

/// A thread's boxed completion value (`Ok`) or panic payload (`Err`).
pub(crate) type ThreadResult = Result<Box<dyn std::any::Any + Send>, Box<dyn std::any::Any + Send>>;

/// One branch point: which eligible thread was chosen, out of how many.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Branch {
    pub chosen: usize,
    pub options: usize,
}

pub(crate) struct SchedState {
    status: Vec<Status>,
    active: usize,
    preemptions: usize,
    switches: usize,
    /// Branch-point decisions made so far in this execution.
    pub(crate) trace: Vec<Branch>,
    /// Set when the execution must stop (deadlock, switch-budget blown,
    /// main-thread panic). All baton waits re-check this.
    pub(crate) abort: Option<String>,
    /// Per-thread completion values, boxed for type erasure.
    results: Vec<Option<ThreadResult>>,
    /// Threads that panicked; cleared when joined.
    panicked: Vec<bool>,
}

pub(crate) struct Execution {
    state: Mutex<SchedState>,
    cv: Condvar,
    pub(crate) preemption_bound: usize,
    pub(crate) max_switches: usize,
    /// Branch choices to replay from a previous execution (DFS prefix).
    pub(crate) replay: Vec<usize>,
    /// Live tracked allocations (see [`crate::alloc`]): address → count.
    pub(crate) allocations: Mutex<HashMap<usize, usize>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl UnwindSafe for Execution {}
impl RefUnwindSafe for Execution {}

thread_local! {
    /// The execution this OS thread is participating in, and its model
    /// thread id. `None` outside `model::run` — every shim then falls
    /// back to plain `std` behaviour.
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The current execution + model thread id, if this thread is modeled.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn install(exec: Arc<Execution>, tid: usize) {
    CURRENT.with(|c| {
        let mut b = c.borrow_mut();
        assert!(
            b.is_none(),
            "loom_lite: nested model executions are not supported"
        );
        *b = Some((exec, tid));
    });
}

pub(crate) fn uninstall() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Instrumented-operation hook: a schedule point if modeled, free otherwise.
#[inline]
pub(crate) fn yield_point() {
    if let Some((exec, tid)) = current() {
        exec.switch(tid, Switch::Op);
    }
}

impl Execution {
    pub(crate) fn new(
        replay: Vec<usize>,
        preemption_bound: usize,
        max_switches: usize,
    ) -> Execution {
        Execution {
            state: Mutex::new(SchedState {
                status: vec![Status::Runnable], // tid 0 = the main closure
                active: 0,
                preemptions: 0,
                switches: 0,
                trace: Vec::new(),
                abort: None,
                results: vec![None],
                panicked: vec![false],
            }),
            cv: Condvar::new(),
            preemption_bound,
            max_switches,
            replay,
            allocations: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Register a new model thread; it is runnable immediately.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = lock(&self.state);
        st.status.push(Status::Runnable);
        st.results.push(None);
        st.panicked.push(false);
        st.status.len() - 1
    }

    pub(crate) fn push_handle(&self, h: std::thread::JoinHandle<()>) {
        lock(&self.handles).push(h);
    }

    /// Block a freshly spawned OS thread until the scheduler first picks
    /// it. Returns `false` if the execution aborted before that.
    pub(crate) fn wait_for_baton(&self, tid: usize) -> bool {
        let mut st = lock(&self.state);
        while st.active != tid {
            if st.abort.is_some() {
                return false;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        true
    }

    /// Hand the baton over and (unless exiting) wait for it to come back.
    /// Panics the calling thread if the execution aborts while it waits —
    /// that panic unwinds through the user closure into the per-thread
    /// `catch_unwind`, failing the schedule cleanly.
    pub(crate) fn switch(&self, me: usize, kind: Switch) {
        let mut st = lock(&self.state);
        if let Some(msg) = st.abort.clone() {
            drop(st);
            panic!("loom_lite: execution aborted: {msg}");
        }
        st.switches += 1;
        if st.switches > self.max_switches {
            let msg = format!(
                "switch budget exhausted ({} switches): possible livelock \
                 (a spin loop that never uses thread::yield_now?)",
                self.max_switches
            );
            st.abort = Some(msg.clone());
            self.cv.notify_all();
            drop(st);
            panic!("loom_lite: {msg}");
        }
        match kind {
            Switch::Op => {}
            Switch::Yield => st.status[me] = Status::Yielded,
            Switch::Join(target) => st.status[me] = Status::Blocked(target),
        }
        if !self.schedule_next(&mut st, me, kind) {
            // Deadlock: every unfinished thread is blocked.
            let msg = format!("deadlock: threads {:?} all blocked", blocked_tids(&st));
            st.abort = Some(msg.clone());
            self.cv.notify_all();
            drop(st);
            panic!("loom_lite: {msg}");
        }
        // Wait for the baton to come back.
        while st.active != me {
            if st.abort.is_some() {
                drop(st);
                panic!("loom_lite: execution aborted mid-schedule");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Mark `me` finished, wake joiners, and hand the baton onward. Never
    /// panics (it runs on thread-exit paths, sometimes after a panic).
    pub(crate) fn thread_exit(&self, me: usize) {
        let mut st = lock(&self.state);
        st.status[me] = Status::Finished;
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(me) {
                *s = Status::Runnable;
            }
        }
        if st.abort.is_none() && !self.schedule_next(&mut st, me, Switch::Op) {
            // Deadlock discovered on an exit path (which must not panic):
            // abort so the blocked threads' own waits report it.
            st.abort = Some(format!(
                "deadlock: threads {:?} all blocked",
                blocked_tids(&st)
            ));
        }
        self.cv.notify_all();
    }

    /// Pick the next thread to run, recording a branch point when more
    /// than one choice is eligible. Returns false on deadlock.
    fn schedule_next(&self, st: &mut SchedState, me: usize, kind: Switch) -> bool {
        let mut eligible: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            // Everyone runnable has yielded: let the yielded threads
            // re-check their conditions.
            eligible = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Yielded)
                .map(|(i, _)| i)
                .collect();
        }
        if eligible.is_empty() {
            if st.status.iter().all(|s| *s == Status::Finished) {
                self.cv.notify_all(); // wakes the driver in wait_all_finished
                return true;
            }
            return false;
        }
        let me_runnable = kind == Switch::Op && st.status[me] == Status::Runnable;
        let options = if me_runnable && st.preemptions >= self.preemption_bound {
            // Preemption budget spent: the current thread must keep going.
            vec![me]
        } else {
            eligible
        };
        let chosen = if options.len() == 1 {
            options[0]
        } else {
            let depth = st.trace.len();
            let idx = if depth < self.replay.len() {
                assert!(
                    self.replay[depth] < options.len(),
                    "loom_lite: replay diverged at branch {depth} \
                     ({} options, replay wants {}): is the test nondeterministic?",
                    options.len(),
                    self.replay[depth]
                );
                self.replay[depth]
            } else {
                0
            };
            st.trace.push(Branch {
                chosen: idx,
                options: options.len(),
            });
            options[idx]
        };
        if me_runnable && chosen != me {
            st.preemptions += 1;
        }
        if st.status[chosen] == Status::Yielded {
            st.status[chosen] = Status::Runnable;
        }
        st.active = chosen;
        self.cv.notify_all();
        true
    }

    /// Driver side: wait until every model thread has finished (or the
    /// execution aborted). Called by `model::check` after the main closure
    /// returns and `thread_exit(0)` ran.
    pub(crate) fn wait_all_finished(&self) {
        let mut st = lock(&self.state);
        while st.abort.is_none() && !st.status.iter().all(|s| *s == Status::Finished) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Abort the execution (main closure panicked): wake everyone so the
    /// OS threads can unwind and be joined.
    pub(crate) fn abort(&self, why: &str) {
        let mut st = lock(&self.state);
        if st.abort.is_none() {
            st.abort = Some(why.to_string());
        }
        self.cv.notify_all();
    }

    pub(crate) fn abort_message(&self) -> Option<String> {
        lock(&self.state).abort.clone()
    }

    /// Join every spawned OS thread. All waits re-check `abort`, so after
    /// `abort()` + `notify_all` this terminates.
    pub(crate) fn join_all(&self) {
        let handles: Vec<_> = lock(&self.handles).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        lock(&self.state).status[tid] == Status::Finished
    }

    pub(crate) fn store_result(&self, tid: usize, r: ThreadResult) {
        let mut st = lock(&self.state);
        if r.is_err() {
            st.panicked[tid] = true;
        }
        st.results[tid] = Some(r);
    }

    pub(crate) fn take_result(&self, tid: usize) -> Option<ThreadResult> {
        let mut st = lock(&self.state);
        st.panicked[tid] = false;
        st.results[tid].take()
    }

    /// A panic in a thread nobody joined still fails the schedule.
    pub(crate) fn unjoined_panics(&self) -> Vec<usize> {
        let st = lock(&self.state);
        st.panicked
            .iter()
            .enumerate()
            .filter(|(_, p)| **p)
            .map(|(i, _)| i)
            .collect()
    }

    /// The branch decisions of this execution, for DFS advancement and
    /// failure reports.
    pub(crate) fn trace(&self) -> Vec<Branch> {
        lock(&self.state).trace.clone()
    }
}

fn blocked_tids(st: &SchedState) -> Vec<usize> {
    st.status
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Status::Blocked(_)))
        .map(|(i, _)| i)
        .collect()
}
