//! Offline stand-in for the `bytes` crate.
//!
//! Only the `BytesMut` surface the workspace uses is provided: a growable,
//! mutable byte buffer that derefs to `[u8]`. Backed by a plain `Vec<u8>`;
//! the real crate's zero-copy splitting machinery is not needed here.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutable, growable byte buffer (minimal `bytes::BytesMut` stand-in).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut {
            inner: vec![0u8; len],
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Append bytes to the end of the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Consume the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> BytesMut {
        BytesMut { inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.inner.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_indexing() {
        let mut b = BytesMut::zeroed(16);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&x| x == 0));
        b[3] = 7;
        assert_eq!(b[3], 7);
    }

    #[test]
    fn from_slice_round_trips() {
        let b = BytesMut::from(&[1u8, 2, 3][..]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn extend() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"ab");
        b.extend_from_slice(b"cd");
        assert_eq!(&b[..], b"abcd");
    }
}
