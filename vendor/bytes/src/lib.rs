//! Offline stand-in for the `bytes` crate.
//!
//! Provides the surface the workspace uses: [`BytesMut`], a growable
//! mutable byte buffer that derefs to `[u8]` and can be frozen, and
//! [`Bytes`], a cheaply-cloneable immutable view over shared storage.
//! `BytesMut` is backed by a plain `Vec<u8>`; `Bytes` is an
//! `Arc<[u8]>`-backed window with O(1) `clone`, `slice` and `split_to`.
//! The real crate's vtable machinery and unsafe pointer arithmetic are
//! deliberately not reproduced — the shim is `forbid(unsafe_code)` and
//! trades a copy at `freeze`/`split_to(BytesMut)` boundaries for
//! simplicity, while keeping every *view* operation allocation-free.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply-cloneable view into shared byte storage
/// (minimal `bytes::Bytes` stand-in).
///
/// Cloning, slicing and splitting never copy the underlying bytes: they
/// bump the `Arc` and adjust the `[start, end)` window.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty view.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A view copying `src` once into shared storage.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from(src.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of `self` (zero-copy: shares the same storage).
    ///
    /// # Panics
    /// Panics when the range escapes the view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice [{lo}, {hi}) out of range for Bytes of len {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest in
    /// `self`. Zero-copy: both views share the same storage.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to({at}) out of range for Bytes of len {}",
            self.len()
        );
        let front = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        front
    }

    /// Split off and return everything from `at` onward, leaving the
    /// first `at` bytes in `self`. Zero-copy.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_off({at}) out of range for Bytes of len {}",
            self.len()
        );
        let back = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        back
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// A mutable, growable byte buffer (minimal `bytes::BytesMut` stand-in).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut {
            inner: vec![0u8; len],
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Drop all contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Shorten the buffer to `len` bytes (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Resize to `len` bytes, filling any growth with `value`.
    pub fn resize(&mut self, len: usize, value: u8) {
        self.inner.resize(len, value);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    /// Append bytes to the end of the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Split off and return the first `at` bytes, leaving the rest (and
    /// the original allocation) in `self`. Unlike the real crate this
    /// copies the tail once; the returned head keeps the buffer's
    /// allocation so a drain-the-front loop stays allocation-free in
    /// steady state.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.len(),
            "split_to({at}) out of range for BytesMut of len {}",
            self.len()
        );
        let tail = self.inner.split_off(at);
        let head = std::mem::replace(&mut self.inner, tail);
        BytesMut { inner: head }
    }

    /// Split off and return everything from `at` onward, leaving the
    /// first `at` bytes in `self`.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.len(),
            "split_off({at}) out of range for BytesMut of len {}",
            self.len()
        );
        BytesMut {
            inner: self.inner.split_off(at),
        }
    }

    /// Freeze into an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }

    /// Consume the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> BytesMut {
        BytesMut { inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.inner.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_indexing() {
        let mut b = BytesMut::zeroed(16);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&x| x == 0));
        b[3] = 7;
        assert_eq!(b[3], 7);
    }

    #[test]
    fn from_slice_round_trips() {
        let b = BytesMut::from(&[1u8, 2, 3][..]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn extend() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"ab");
        b.extend_from_slice(b"cd");
        assert_eq!(&b[..], b"abcd");
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.extend_from_slice(&[9u8; 48]);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "clear must not shed the allocation");
        b.reserve(128);
        assert!(b.capacity() >= 128);
    }

    #[test]
    fn truncate_and_resize() {
        let mut b = BytesMut::from(&b"abcdef"[..]);
        b.truncate(3);
        assert_eq!(&b[..], b"abc");
        b.truncate(10); // no-op past the end
        assert_eq!(&b[..], b"abc");
        b.resize(5, 0x7a);
        assert_eq!(&b[..], b"abczz");
        b.resize(2, 0);
        assert_eq!(&b[..], b"ab");
    }

    #[test]
    fn freeze_then_zero_copy_views() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello world");
        let b = m.freeze();
        let c = b.clone();
        assert_eq!(b, c);
        let hello = b.slice(..5);
        let world = b.slice(6..);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        // Views share storage with the parent: all alive at once.
        assert_eq!(&b[..], b"hello world");
    }

    #[test]
    fn bytes_split_to_and_off() {
        let mut b = Bytes::from(&b"0123456789"[..]);
        let head = b.split_to(4);
        assert_eq!(&head[..], b"0123");
        assert_eq!(&b[..], b"456789");
        let tail = b.split_off(2);
        assert_eq!(&b[..], b"45");
        assert_eq!(&tail[..], b"6789");
        let empty = b.split_to(0);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to(11)")]
    fn bytes_split_past_end_panics() {
        let mut b = Bytes::from(&b"0123456789"[..]);
        let _ = b.split_to(11);
    }

    #[test]
    fn bytes_mut_split_to_keeps_allocation_in_head() {
        let mut m = BytesMut::with_capacity(256);
        m.extend_from_slice(&[1u8; 8]);
        m.extend_from_slice(&[2u8; 8]);
        let head = m.split_to(8);
        assert_eq!(&head[..], &[1u8; 8]);
        assert_eq!(&m[..], &[2u8; 8]);
        assert!(
            head.capacity() >= 256,
            "head inherits the original allocation"
        );
    }

    #[test]
    fn bytes_equality_and_slice_of_slice() {
        let b = Bytes::from(&b"abcdef"[..]);
        let mid = b.slice(1..5); // bcde
        let inner = mid.slice(1..3); // cd
        assert_eq!(&inner[..], b"cd");
        assert_eq!(inner, Bytes::from(&b"cd"[..]));
        assert!(inner == b"cd"[..]);
    }
}
