//! Deterministic model-checking of the snapshot cell's pin/grace-period
//! protocol.
//!
//! Built only with the `model` feature **and** `--cfg delayguard_model`
//! (e.g. `RUSTFLAGS="--cfg delayguard_model" cargo test -p arc-swap
//! --features model --test model`): the crate's atomics then resolve to
//! `loom_lite::sync`, its allocation hooks to the model checker's
//! exactly-once-free registry, and every test body runs once per explored
//! thread interleaving. The assertions hold on *every* schedule up to the
//! preemption bound, or the harness panics with a replayable seed.
#![cfg(all(feature = "model", delayguard_model))]

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::Arc;

use arc_swap::ArcSwap;
use loom_lite::{model, thread};

/// A payload that counts its drops, so each schedule can assert every
/// snapshot was freed exactly once (the model's leak check independently
/// rules out zero-times).
struct Versioned {
    v: u64,
    _drops: Bump,
}

struct Bump(Arc<StdAtomicUsize>);
impl Drop for Bump {
    fn drop(&mut self) {
        self.0.fetch_add(1, StdOrdering::SeqCst);
    }
}

fn versioned(v: u64, drops: &Arc<StdAtomicUsize>) -> Versioned {
    Versioned {
        v,
        _drops: Bump(Arc::clone(drops)),
    }
}

/// (b) A load racing a swap never yields a dangling or torn snapshot —
/// the reader sees exactly the old or the new value, intact — and both
/// snapshots are freed exactly once. `load_full` asserts registry
/// liveness at the exact point it lends the pointer out, so any schedule
/// where the writer reclaims too early fails with a replayable seed; the
/// registry's end-of-execution leak check covers the never-freed side.
#[test]
fn racing_load_and_swap_never_dangles_frees_exactly_once() {
    model::run(|| {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let cell = Arc::new(ArcSwap::from_pointee(versioned(1, &drops)));
        let c = Arc::clone(&cell);
        let reader = thread::spawn(move || c.load_full().v);
        let old = cell.swap(Arc::new(versioned(2, &drops)));
        assert_eq!(old.v, 1, "swap must return the displaced value");
        drop(old);
        let seen = reader.join().unwrap();
        assert!(seen == 1 || seen == 2, "torn snapshot: {seen}");
        assert_eq!(cell.load_full().v, 2, "cell must hold the new value");
        drop(cell);
        assert_eq!(
            drops.load(StdOrdering::SeqCst),
            2,
            "each snapshot freed exactly once"
        );
    });
}

/// Two writers racing each other and a reader: the pointer chain stays
/// coherent (the reader sees one of the three published values), each
/// displaced value comes back from exactly one `swap`, and all three
/// values are freed exactly once.
#[test]
fn racing_writers_keep_chain_coherent() {
    model::run(|| {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let cell = Arc::new(ArcSwap::from_pointee(versioned(1, &drops)));
        let cw = Arc::clone(&cell);
        let dw = Arc::clone(&drops);
        let writer = thread::spawn(move || cw.swap(Arc::new(versioned(2, &dw))).v);
        let displaced_main = cell.swap(Arc::new(versioned(3, &drops))).v;
        let displaced_writer = writer.join().unwrap();
        // The two swaps displaced the initial value and the losing write,
        // in some order — never the same value twice.
        let current = cell.load_full().v;
        assert!(
            current == 2 || current == 3,
            "final value must be one of the writes"
        );
        let mut displaced = vec![displaced_main, displaced_writer];
        displaced.sort_unstable();
        let expected = if current == 2 { vec![1, 3] } else { vec![1, 2] };
        assert_eq!(displaced, expected, "each value displaced exactly once");
        drop(cell);
        assert_eq!(
            drops.load(StdOrdering::SeqCst),
            3,
            "all three snapshots freed exactly once"
        );
    });
}

/// A chain of stores interleaved with loads: every displaced snapshot is
/// retired (leak check) and the final state is the last store.
#[test]
fn store_chain_retires_every_snapshot() {
    model::run(|| {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let cell = Arc::new(ArcSwap::from_pointee(versioned(0, &drops)));
        let c = Arc::clone(&cell);
        let reader = thread::spawn(move || {
            let a = c.load_full().v;
            let b = c.load_full().v;
            assert!(b >= a, "snapshots moved backwards: {a} then {b}");
        });
        cell.store(Arc::new(versioned(1, &drops)));
        cell.store(Arc::new(versioned(2, &drops)));
        reader.join().unwrap();
        assert_eq!(cell.load_full().v, 2);
        drop(cell);
        assert_eq!(
            drops.load(StdOrdering::SeqCst),
            3,
            "all three snapshots freed exactly once"
        );
    });
}

/// Negative control — the harness catches the bug class it exists for.
/// This cell is the same protocol with the grace period deleted: the
/// writer reclaims the displaced value the instant it is unpublished,
/// without waiting for pinned readers. On some interleaving a reader is
/// preempted between loading the raw pointer and taking its reference,
/// the writer frees the value in that gap, and the reader's liveness
/// check trips. The model checker must find that schedule. (The fixture
/// checks liveness through the registry instead of dereferencing, so the
/// caught bug never becomes actual undefined behavior.)
#[test]
#[should_panic(expected = "use of retired allocation")]
fn seeded_bug_missing_grace_period_is_caught() {
    use loom_lite::sync::{AtomicPtr, Ordering};
    use loom_lite::{alloc, preemption_point};

    struct GracelessCell {
        ptr: AtomicPtr<u64>,
    }
    impl GracelessCell {
        fn new(v: u64) -> GracelessCell {
            let raw = Box::into_raw(Box::new(v));
            alloc::register(raw.cast_const());
            GracelessCell {
                ptr: AtomicPtr::new(raw),
            }
        }
        fn load(&self) {
            let p = self.ptr.load(Ordering::SeqCst);
            // The same danger window load_full marks: raw pointer in
            // hand, no reference yet. Nothing pins the value here.
            preemption_point();
            alloc::assert_live(p.cast_const());
            // A real reader would dereference `p` now; the fixture stops
            // at the liveness check.
        }
        fn swap_no_grace(&self, v: u64) {
            let raw = Box::into_raw(Box::new(v));
            alloc::register(raw.cast_const());
            let old = self.ptr.swap(raw, Ordering::SeqCst);
            // BUG under test: no grace period — reclaim immediately,
            // while a reader may still hold `old` unpinned.
            alloc::retire(old.cast_const());
            // SAFETY: `old` came from `Box::into_raw` in new/swap_no_grace
            // and the swap unpublished it; within this *fixture* no other
            // code dereferences it (readers stop at the liveness check),
            // so the premature free cannot become actual UB.
            drop(unsafe { Box::from_raw(old) });
        }
    }
    impl Drop for GracelessCell {
        fn drop(&mut self) {
            let p = self.ptr.load(Ordering::SeqCst);
            alloc::retire(p.cast_const());
            // SAFETY: `p` is the cell's sole published `Box::into_raw`
            // pointer and `&mut self` means nobody else can reach it.
            drop(unsafe { Box::from_raw(p) });
        }
    }
    // SAFETY: the raw pointer is only freed by the unpublishing writer or
    // the exclusive Drop; readers never dereference it (see above). The
    // fixture exists to let the model checker flag the unsound reclaim
    // through the registry rather than through real memory.
    unsafe impl Send for GracelessCell {}
    // SAFETY: as above.
    unsafe impl Sync for GracelessCell {}

    model::run(|| {
        let cell = Arc::new(GracelessCell::new(1));
        let c = Arc::clone(&cell);
        // The writer runs on the spawned thread so the liveness panic
        // fires on the main thread and keeps its message intact.
        let writer = thread::spawn(move || c.swap_no_grace(2));
        cell.load();
        writer.join().unwrap();
    });
}
