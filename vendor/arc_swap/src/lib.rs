//! Offline stand-in for the `arc-swap` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `arc-swap`'s API it actually uses:
//! an atomically replaceable `Arc<T>` cell supporting concurrent snapshot
//! loads (`load_full`) and whole-value replacement (`store` / `swap`).
//!
//! The real crate's `load` is wait-free via debt tracking; this shim backs
//! the cell with a `std::sync::RwLock<Arc<T>>` instead. Readers take a
//! *shared* lock only long enough to clone the `Arc` (two atomic ops), so
//! loads never contend with each other and are blocked by a writer only
//! for the duration of a pointer swap. For the workspace's usage — a
//! snapshot rebuilt a few dozen times per second and loaded millions of
//! times — this is indistinguishable from the real thing, and the API is
//! drop-in compatible should the real dependency ever be restored.

use std::sync::{Arc, RwLock};

/// An atomically swappable `Arc<T>`: readers obtain consistent snapshots,
/// a writer replaces the whole value in one step.
#[derive(Debug)]
pub struct ArcSwap<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// A cell holding `value`.
    pub fn new(value: Arc<T>) -> ArcSwap<T> {
        ArcSwap {
            inner: RwLock::new(value),
        }
    }

    /// A cell holding `Arc::new(value)` (the real crate's constructor for
    /// plain values).
    pub fn from_pointee(value: T) -> ArcSwap<T> {
        ArcSwap::new(Arc::new(value))
    }

    /// Snapshot the current value. Cheap (an `Arc` clone under a shared
    /// lock) and safe to call from any number of threads concurrently.
    pub fn load_full(&self) -> Arc<T> {
        match self.inner.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Replace the current value.
    pub fn store(&self, new: Arc<T>) {
        self.swap(new);
    }

    /// Replace the current value, returning the previous one.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let mut g = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::replace(&mut *g, new)
    }

    /// Consume the cell, returning the held `Arc`.
    pub fn into_inner(self) -> Arc<T> {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        ArcSwap::from_pointee(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_store_swap() {
        let cell = ArcSwap::from_pointee(1);
        assert_eq!(*cell.load_full(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load_full(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.into_inner(), 3);
    }

    #[test]
    fn snapshots_survive_replacement() {
        let cell = ArcSwap::from_pointee(vec![1, 2, 3]);
        let snap = cell.load_full();
        cell.store(Arc::new(vec![9]));
        // The old snapshot is still intact and fully readable.
        assert_eq!(*snap, vec![1, 2, 3]);
        assert_eq!(*cell.load_full(), vec![9]);
    }

    #[test]
    fn concurrent_loads_and_stores() {
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load_full();
                        assert!(v >= last, "snapshots must be monotone");
                        last = v;
                    }
                })
            })
            .collect();
        for i in 1..=1000 {
            cell.store(Arc::new(i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load_full(), 1000);
    }
}
