//! Offline stand-in for the `arc-swap` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `arc-swap`'s API it actually uses:
//! an atomically replaceable `Arc<T>` cell supporting concurrent snapshot
//! loads (`load_full`) and whole-value replacement (`store` / `swap`).
//!
//! ## How it works
//!
//! The cell holds one strong count of the current `Arc<T>` as a raw
//! pointer in an [`AtomicPtr`], plus a *pin counter*:
//!
//! * **`load_full`** (readers, the guard's query hot path) is wait-free:
//!   pin (one `fetch_add`), read the pointer, bump the `Arc`'s strong
//!   count, unpin. No locks, and no writer can free the pointee while any
//!   reader is pinned.
//! * **`store` / `swap`** (the snapshot refresher, a few times a second)
//!   publishes the new pointer with one atomic `swap`, then waits out a
//!   grace period — pins draining to zero — before assuming ownership of
//!   the old value. Any reader pinned before the swap finishes cloning
//!   before the writer proceeds; any reader arriving after the swap sees
//!   the new pointer. Writers therefore never free a value a reader is
//!   still touching.
//!
//! The real crate's `load` is wait-free via debt tracking; this shim gets
//! the same reader guarantees from the pin counter at the cost of making
//! rare writers wait briefly, which is exactly the right trade for a
//! snapshot rebuilt dozens of times per second and loaded millions of
//! times. The API is drop-in compatible should the real dependency ever
//! be restored.
//!
//! ## Verification
//!
//! The pin/grace-period protocol is exactly the kind of code stress tests
//! cannot vouch for, so it is model-checked: atomics are imported through
//! the [`sync`] facade, and `tests/model.rs` (built with `--features
//! model` and `RUSTFLAGS="--cfg delayguard_model"`) drives load/store/
//! swap races through the vendored `loom_lite` checker with
//! exactly-once-free instrumentation — every retired snapshot freed once,
//! no reader ever handed a dangling pointer, on every explored schedule.

#![deny(unsafe_op_in_unsafe_fn)]

mod sync;

use std::sync::Arc;

use crate::sync::{
    assert_live, backoff, preemption_point, register, retire, AtomicPtr, AtomicUsize, Ordering,
};

/// An atomically swappable `Arc<T>`: readers obtain consistent snapshots
/// wait-free, a writer replaces the whole value in one step.
pub struct ArcSwap<T> {
    /// One strong count of the current value, as `Arc::into_raw`.
    ptr: AtomicPtr<T>,
    /// Readers mid-`load_full`. A writer that has unpublished a pointer
    /// waits for this to drain before taking ownership of the old value.
    pins: AtomicUsize,
}

// SAFETY: the cell shares `Arc<T>` values across threads (that is its
// purpose), so it is `Send`/`Sync` exactly when `Arc<T>` is: `T` must be
// both `Send` and `Sync`. The raw pointer is always a live strong count
// produced by `Arc::into_raw`; the pin/grace-period protocol (see module
// docs) guarantees no thread dereferences it after the owning writer
// reclaims it.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// A cell holding `value`.
    pub fn new(value: Arc<T>) -> ArcSwap<T> {
        let raw = Arc::into_raw(value).cast_mut();
        register(raw);
        ArcSwap {
            ptr: AtomicPtr::new(raw),
            pins: AtomicUsize::new(0),
        }
    }

    /// A cell holding `Arc::new(value)` (the real crate's constructor for
    /// plain values).
    pub fn from_pointee(value: T) -> ArcSwap<T> {
        ArcSwap::new(Arc::new(value))
    }

    /// Snapshot the current value. Wait-free and safe to call from any
    /// number of threads concurrently: one pin increment, one pointer
    /// load, one strong-count increment, one unpin.
    pub fn load_full(&self) -> Arc<T> {
        self.pins.fetch_add(1, Ordering::SeqCst);
        let p = self.ptr.load(Ordering::SeqCst).cast_const();
        // The reader's danger window: we hold a raw pointer but no strong
        // count yet — only the pin keeps a writer from freeing it. Let the
        // model checker preempt us here (no-op natively).
        preemption_point();
        assert_live(p);
        // SAFETY: `p` was produced by `Arc::into_raw` (every pointer the
        // cell publishes is), and it cannot have been released: a writer
        // only reclaims an unpublished pointer after observing `pins` at
        // zero, and our pin was visible (SeqCst) before we loaded `p` —
        // so either we loaded the current value, or the writer that
        // unpublished `p` is still waiting on our pin.
        unsafe { Arc::increment_strong_count(p) };
        // The count bumped above is ours; from here the value stays alive
        // for as long as the returned Arc does, pin or no pin.
        self.pins.fetch_sub(1, Ordering::SeqCst);
        // SAFETY: `p` is valid (above) and we own the strong count just
        // added, which `Arc::from_raw` assumes.
        unsafe { Arc::from_raw(p) }
    }

    /// Replace the current value.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Replace the current value, returning the previous one. Blocks
    /// briefly while concurrently pinned readers finish (readers never
    /// hold a pin for longer than one pointer load plus one count bump).
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let new_raw = Arc::into_raw(new).cast_mut();
        register(new_raw);
        let old = self.ptr.swap(new_raw, Ordering::SeqCst);
        // Grace period: readers pinned before the swap may still be
        // between loading `old` and bumping its strong count. Once pins
        // drain to zero every such reader holds a counted clone, and
        // readers arriving later see `new_raw` — nobody can touch `old`
        // through the cell again.
        let mut spins = 0u32;
        while self.pins.load(Ordering::SeqCst) != 0 {
            backoff(&mut spins);
        }
        retire(old);
        // SAFETY: `old` came from `Arc::into_raw` when it was published;
        // the cell's strong count transfers to the returned Arc, and the
        // grace period above rules out unconsummated readers.
        unsafe { Arc::from_raw(old) }
    }

    /// Consume the cell, returning the held `Arc`.
    pub fn into_inner(self) -> Arc<T> {
        let p = self.ptr.load(Ordering::SeqCst);
        retire(p);
        std::mem::forget(self);
        // SAFETY: `p` is the cell's published pointer from
        // `Arc::into_raw`; `self` is consumed (and its Drop skipped), so
        // the cell's strong count transfers to the caller exactly once.
        unsafe { Arc::from_raw(p) }
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        let p = self.ptr.load(Ordering::SeqCst);
        retire(p);
        // SAFETY: `&mut self` means no reader can be pinned and no writer
        // mid-swap; the cell's strong count is released exactly once.
        drop(unsafe { Arc::from_raw(p) });
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        ArcSwap::from_pointee(T::default())
    }
}

impl<T> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_store_swap() {
        let cell = ArcSwap::from_pointee(1);
        assert_eq!(*cell.load_full(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load_full(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.into_inner(), 3);
    }

    #[test]
    fn snapshots_survive_replacement() {
        let cell = ArcSwap::from_pointee(vec![1, 2, 3]);
        let snap = cell.load_full();
        cell.store(Arc::new(vec![9]));
        // The old snapshot is still intact and fully readable.
        assert_eq!(*snap, vec![1, 2, 3]);
        assert_eq!(*cell.load_full(), vec![9]);
    }

    #[test]
    fn drop_and_into_inner_release_exactly_once() {
        use std::sync::atomic::AtomicUsize;

        struct Bump(Arc<AtomicUsize>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcSwap::from_pointee(Bump(Arc::clone(&drops)));
        let old = cell.swap(Arc::new(Bump(Arc::clone(&drops))));
        drop(old);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "swapped-out value freed once"
        );
        drop(cell);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            2,
            "cell drop frees the current value once"
        );

        let cell = ArcSwap::from_pointee(Bump(Arc::clone(&drops)));
        let inner = cell.into_inner();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            2,
            "into_inner transfers, not frees"
        );
        drop(inner);
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn concurrent_loads_and_stores() {
        // Shrunk under Miri (interpreted execution is slow; the raw
        // pointer discipline, not the iteration count, is what it checks).
        let iters: u64 = if cfg!(miri) { 50 } else { 1000 };
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load_full();
                        assert!(v >= last, "snapshots must be monotone");
                        last = v;
                    }
                })
            })
            .collect();
        for i in 1..=iters {
            cell.store(Arc::new(i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load_full(), iters);
    }
}
