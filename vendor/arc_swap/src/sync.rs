//! Synchronization facade for the snapshot cell (see
//! `delayguard_popularity::sync` for the pattern): atomics resolve to
//! `std::sync::atomic` normally and to the vendored `loom_lite` model
//! checker under the `model` feature + `--cfg delayguard_model`, and the
//! allocation-tracking hooks compile to nothing outside the model.

#[cfg(all(feature = "model", delayguard_model))]
pub(crate) use loom_lite::sync::{AtomicPtr, AtomicUsize, Ordering};

#[cfg(not(all(feature = "model", delayguard_model)))]
pub(crate) use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// One step of a bounded busy-wait. Under the model this is a cooperative
/// yield (deprioritizing the spinner so the schedule space stays finite);
/// natively it spins briefly, then starts ceding the core so a reader
/// preempted mid-pin can finish and unblock the writer.
#[cfg(all(feature = "model", delayguard_model))]
pub(crate) fn backoff(_spins: &mut u32) {
    loom_lite::thread::yield_now();
}

#[cfg(not(all(feature = "model", delayguard_model)))]
pub(crate) fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// A model-only schedule point for the reader's danger window — the gap
/// between loading the raw snapshot pointer and bumping its strong count,
/// where an OS preemption would let a graceless writer free the value out
/// from under the reader. The model cedes the baton only *before* each
/// instrumented operation, so without this marker that gap is atomic and
/// the bug class invisible. Compiles to nothing natively.
#[cfg(all(feature = "model", delayguard_model))]
pub(crate) use loom_lite::preemption_point;

#[cfg(not(all(feature = "model", delayguard_model)))]
#[inline(always)]
pub(crate) fn preemption_point() {}

/// Model-only exactly-once-free instrumentation: the cell registers every
/// pointer it publishes, asserts liveness before lending one out, and
/// retires it at the instant no reader may touch it again. The model
/// checker turns violations (use-after-free, double-free, leak) into
/// failing schedules with replayable seeds.
#[cfg(all(feature = "model", delayguard_model))]
pub(crate) use loom_lite::alloc::{assert_live, register, retire};

#[cfg(not(all(feature = "model", delayguard_model)))]
pub(crate) fn register<T>(_p: *const T) {}

#[cfg(not(all(feature = "model", delayguard_model)))]
pub(crate) fn assert_live<T>(_p: *const T) {}

#[cfg(not(all(feature = "model", delayguard_model)))]
pub(crate) fn retire<T>(_p: *const T) {}
