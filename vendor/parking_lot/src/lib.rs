//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `parking_lot`'s API it actually
//! uses — `Mutex` and `RwLock` with non-poisoning guards — implemented
//! over `std::sync`. Poisoning is translated into a panic propagation:
//! a thread that observes a poisoned lock panics, which matches how the
//! codebase treated `parking_lot` (no `Result` handling at call sites).

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`-style (non-`Result`) API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`-style (non-`Result`) API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
