//! # delayguard
//!
//! Facade crate re-exporting the whole `delayguard` workspace: a
//! production-quality Rust implementation of
//!
//! > Jayapandian, Noble, Mickens, Jagadish.
//! > *Using Delay to Defend Against Database Extraction.*
//! > SDM Workshop at VLDB 2004, LNCS 3178, pp. 202–218.
//!
//! See the README for a tour and `examples/` for runnable entry points.
//!
//! * [`storage`] — embedded relational storage engine (tables, pages,
//!   indexes, snapshots).
//! * [`query`] — SQL-subset parser, planner, and executor.
//! * [`popularity`] — decayed frequency statistics, order statistics,
//!   sketches, write-behind count caches (§2.3, §4.4).
//! * [`core`] — the paper's contribution: delay policies (§2.1–2.2, §3.1),
//!   closed-form analysis (Eq. 2–7, 11–12), the gatekeeper (§2.4), and the
//!   [`core::GuardedDatabase`] facade.
//! * [`workload`] — deterministic Zipf/trace/adversary generators (§4).
//! * [`sim`] — virtual-clock replay, extraction experiments, staleness and
//!   latency metrics (§4.1–4.4), shared metrics registry.
//! * [`server`] — the network front door: framed TCP protocol, gatekeeper
//!   admission, timer-wheel delay enforcement, load shedding, graceful
//!   drain.

pub use delayguard_core as core;
pub use delayguard_popularity as popularity;
pub use delayguard_query as query;
pub use delayguard_server as server;
pub use delayguard_sim as sim;
pub use delayguard_storage as storage;
pub use delayguard_workload as workload;
