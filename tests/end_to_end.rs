//! End-to-end integration: the full SQL path (parse → plan → execute →
//! count → rank → delay) under a realistic skewed workload, reproducing
//! the paper's core claim through the engine rather than the fast-path
//! simulator.

use delayguard::core::{GuardConfig, GuardedDatabase};
use delayguard::query::StatementOutput;
use delayguard::sim::median_of;
use delayguard::workload::{Rng, Zipf};

fn setup(rows: u64) -> GuardedDatabase {
    let db = GuardedDatabase::new(GuardConfig::paper_default());
    db.execute_at(
        "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
        0.0,
    )
    .unwrap();
    db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
        .unwrap();
    for id in 0..rows {
        db.execute_at(
            &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
            0.0,
        )
        .unwrap();
    }
    db
}

#[test]
fn legitimate_users_fast_extraction_slow_through_sql() {
    let rows = 500u64;
    let db = setup(rows);
    let zipf = Zipf::new(rows, 1.5);
    let mut rng = Rng::new(99);

    // A population of legitimate users with Zipf preferences. Object ids
    // here coincide with ranks; the defense does not care.
    let mut user_delays = Vec::new();
    let mut t = 1.0;
    for _ in 0..20_000 {
        let id = zipf.sample(&mut rng) - 1;
        let resp = db
            .execute_at(&format!("SELECT entry FROM directory WHERE id = {id}"), t)
            .unwrap();
        assert_eq!(resp.tuples_charged, 1);
        user_delays.push(resp.delay_secs);
        t += 1.0;
    }
    // Warm state: judge the steady-state median on the last half.
    let steady = user_delays.split_off(user_delays.len() / 2);
    let median = median_of(steady);

    // The adversary crawls the table row by row through the same front
    // door (delays summed but not recorded into its favor: we query the
    // delays the *current* state would charge).
    let mut adversary_total = 0.0;
    for id in 0..rows {
        let resp = db
            .execute_at(&format!("SELECT entry FROM directory WHERE id = {id}"), t)
            .unwrap();
        adversary_total += resp.delay_secs;
        t += 1.0;
    }

    assert!(median < 0.5, "median user delay {median}");
    assert!(
        adversary_total > 1_000.0,
        "adversary total {adversary_total}"
    );
    let per_tuple = adversary_total / rows as f64;
    assert!(
        per_tuple / median.max(1e-6) > 10.0,
        "per-tuple adversary {per_tuple} vs median {median}"
    );
}

#[test]
fn multi_tuple_queries_charged_as_aggregate_of_singles() {
    let db = setup(50);
    // Warm up two tuples heavily.
    for t in 0..200 {
        db.execute_at("SELECT * FROM directory WHERE id = 1", t as f64)
            .unwrap();
        db.execute_at("SELECT * FROM directory WHERE id = 2", t as f64)
            .unwrap();
    }
    let single1 = db
        .execute_at("SELECT * FROM directory WHERE id = 1", 500.0)
        .unwrap();
    let single2 = db
        .execute_at("SELECT * FROM directory WHERE id = 2", 500.0)
        .unwrap();
    let pair = db
        .execute_at("SELECT * FROM directory WHERE id = 1 OR id = 2", 500.0)
        .unwrap();
    assert_eq!(pair.tuples_charged, 2);
    // Sum model: the pair costs about the two singles combined. (Counts
    // moved slightly between measurements, so allow slack.)
    let sum = single1.delay_secs + single2.delay_secs;
    assert!(
        (pair.delay_secs - sum).abs() <= sum * 0.2 + 1e-6,
        "pair {} vs singles {}",
        pair.delay_secs,
        sum
    );
}

#[test]
fn updates_and_deletes_flow_through_the_guard() {
    let db = setup(20);
    let r = db
        .execute_at("UPDATE directory SET entry = 'x' WHERE id < 5", 1.0)
        .unwrap();
    assert_eq!(r.output.row_count(), 5);
    assert_eq!(r.delay_secs, 0.0, "writes are not delayed");
    let r = db
        .execute_at("DELETE FROM directory WHERE id >= 15", 2.0)
        .unwrap();
    assert_eq!(r.output.row_count(), 5);
    let rows = db.execute_at("SELECT * FROM directory", 3.0).unwrap();
    match rows.output {
        StatementOutput::Rows(out) => assert_eq!(out.len(), 15),
        other => panic!("{other:?}"),
    }
}

#[test]
fn guard_survives_concurrent_use() {
    let db = std::sync::Arc::new(setup(100));
    let mut handles = Vec::new();
    for thread in 0..4 {
        let db = std::sync::Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..500u64 {
                let id = (thread * 25 + i % 25) % 100;
                let resp = db
                    .execute_at(
                        &format!("SELECT entry FROM directory WHERE id = {id}"),
                        i as f64,
                    )
                    .unwrap();
                assert_eq!(resp.tuples_charged, 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.access_events("directory"), 2000);
}
