//! Gatekeeper + guarded database working together: the full §2.4 story
//! under a virtual clock.

use delayguard::core::analysis::sybil_optimum;
use delayguard::core::gatekeeper::{
    Admission, Gatekeeper, GatekeeperConfig, Ipv4, RefusalReason, RegistrationOutcome,
    RegistrationPolicy, UserId,
};
use delayguard::core::{GuardConfig, GuardedDatabase};

fn keeper(interval: f64) -> Gatekeeper {
    Gatekeeper::new(GatekeeperConfig {
        per_user_rate: 1.0,
        per_user_burst: 3.0,
        per_subnet_rate: 2.0,
        per_subnet_burst: 6.0,
        registration: RegistrationPolicy::interval(interval),
        storefront_query_threshold: 50,
    })
}

fn must_register(k: &mut Gatekeeper, ip: &str, now: f64) -> UserId {
    match k.register(Ipv4::parse(ip).unwrap(), now) {
        RegistrationOutcome::Admitted { user, .. } => user,
        other => panic!("registration failed: {other:?}"),
    }
}

#[test]
fn admitted_queries_flow_into_the_guarded_database() {
    let mut keeper = keeper(10.0);
    let db = GuardedDatabase::new(GuardConfig::paper_default());
    db.execute_at("CREATE TABLE d (id INT NOT NULL, v TEXT)", 0.0)
        .unwrap();
    for i in 0..20 {
        db.execute_at(&format!("INSERT INTO d VALUES ({i}, 'v')"), 0.0)
            .unwrap();
    }
    let alice = must_register(&mut keeper, "192.0.2.1", 0.0);
    let mut served = 0;
    let mut refused = 0;
    // Alice asks one query per second: all within budget.
    for t in 0..30 {
        let now = 100.0 + t as f64;
        match keeper.admit(alice, now) {
            Admission::Granted => {
                db.execute_at(&format!("SELECT * FROM d WHERE id = {}", t % 20), now)
                    .unwrap();
                served += 1;
            }
            Admission::Refused(_) => refused += 1,
        }
    }
    assert_eq!(served, 30);
    assert_eq!(refused, 0);
    assert_eq!(db.access_events("d"), 30);
}

#[test]
fn extraction_bot_is_rate_limited_before_delay_even_matters() {
    let mut keeper = keeper(10.0);
    let bot = must_register(&mut keeper, "192.0.2.9", 0.0);
    // The bot fires 1000 queries in one second: the token bucket lets the
    // burst (3) through and refuses the rest.
    let mut granted = 0;
    for i in 0..1000 {
        let now = 100.0 + i as f64 / 1000.0;
        if keeper.admit(bot, now) == Admission::Granted {
            granted += 1;
        }
    }
    assert!(granted <= 5, "bot pushed {granted} queries through");
}

#[test]
fn sybil_fleet_pinned_by_registration_and_subnet() {
    let interval = 60.0;
    let mut keeper = keeper(interval);
    // Registering 10 identities takes 9 * 60 s of calendar time.
    let mut users = Vec::new();
    for i in 0..10 {
        let t = i as f64 * interval;
        users.push(must_register(&mut keeper, &format!("10.1.1.{i}"), t));
    }
    assert_eq!(keeper.registrar().time_to_accumulate(10), 9.0 * interval);
    // All ten share one /24: their combined steady-state throughput is the
    // subnet rate (2/s), not 10x the per-user rate.
    let mut granted = 0;
    let t0 = 10_000.0;
    for tick in 0..600 {
        let now = t0 + tick as f64 * 0.1; // 60 seconds of wall clock
        for &u in &users {
            if keeper.admit(u, now) == Admission::Granted {
                granted += 1;
            }
        }
    }
    let per_sec = granted as f64 / 60.0;
    assert!(
        per_sec < 2.5,
        "subnet aggregate should pin ~2/s, got {per_sec}"
    );
}

#[test]
fn refusal_reasons_are_distinguishable() {
    let mut keeper = keeper(1.0);
    assert_eq!(
        keeper.admit(UserId(777), 0.0),
        Admission::Refused(RefusalReason::Unregistered)
    );
    let u = must_register(&mut keeper, "10.0.0.1", 0.0);
    for _ in 0..3 {
        assert_eq!(keeper.admit(u, 10.0), Admission::Granted);
    }
    assert_eq!(
        keeper.admit(u, 10.0),
        Admission::Refused(RefusalReason::UserRateExceeded)
    );
}

#[test]
fn registration_economics_match_the_analysis() {
    // Size the interval so the optimal Sybil fleet still pays >= 40% of
    // the serial cost, then verify with the registrar's own bound.
    let serial_cost = 7.0 * 24.0 * 3600.0; // one week of delay
    let t = delayguard::core::analysis::registration_interval_for(serial_cost, 0.4);
    let (k, wall) = sybil_optimum(serial_cost, t);
    assert!(wall >= 0.4 * serial_cost * 0.99);
    let keeper = keeper(t);
    // The registrar's accumulation bound agrees with the model's k * t.
    let bound = keeper.registrar().time_to_accumulate(k.round() as u64);
    assert!((bound - (k.round() - 1.0) * t).abs() < 1e-6);
}
