//! Defense-in-depth integration: access-rate, update-rate, and hybrid
//! policies against sequential, shuffled, Sybil, and storefront
//! adversaries.

use delayguard::core::{
    AccessDelayPolicy, ChargingModel, GuardConfig, GuardPolicy, GuardedDatabase, UpdateDelayPolicy,
};
use delayguard::popularity::FrequencyTracker;
use delayguard::sim::{extract_access_based, extract_update_based};
use delayguard::workload::{
    ExtractionOrder, Rng, StorefrontObserver, SybilPlan, UpdateRates, Zipf,
};

fn learned_tracker(objects: u64, alpha: f64, requests: usize) -> FrequencyTracker {
    let zipf = Zipf::new(objects, alpha);
    let mut rng = Rng::new(31);
    let mut t = FrequencyTracker::no_decay();
    for key in 0..objects {
        t.ensure_tracked(key);
    }
    for _ in 0..requests {
        t.record(zipf.sample(&mut rng) - 1);
    }
    t
}

#[test]
fn extraction_order_cannot_dodge_the_total() {
    let objects = 2_000;
    let tracker = learned_tracker(objects, 1.5, 100_000);
    let policy = AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0);
    let seq = extract_access_based(&tracker, &policy, objects, ExtractionOrder::Sequential);
    let shuf = extract_access_based(&tracker, &policy, objects, ExtractionOrder::Shuffled(7));
    assert!((seq.total_delay_secs - shuf.total_delay_secs).abs() < 1e-6);
    assert!(seq.fraction_of_max() > 0.5);
}

#[test]
fn sybil_parallelism_bounded_by_partition_max() {
    let objects = 2_000u64;
    let tracker = learned_tracker(objects, 1.5, 100_000);
    let policy = AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0);
    let serial = extract_access_based(&tracker, &policy, objects, ExtractionOrder::Sequential)
        .total_delay_secs;
    for identities in [2usize, 10, 100] {
        let plan = SybilPlan {
            identities,
            order: ExtractionOrder::Sequential,
        };
        let wall = plan.wall_clock(objects, |k| policy.delay(&tracker, objects, k));
        // Parallelism divides the wall clock by ~k but never below
        // serial/k (round-robin balance) and never beats the per-tuple cap
        // structure by more than the fleet size.
        assert!(wall <= serial / identities as f64 * 1.3 + 10.0);
        assert!(wall >= serial / identities as f64 * 0.7 - 10.0);
    }
}

#[test]
fn storefront_coverage_grows_sublinearly_under_skew() {
    // A storefront only sees what its customers ask: under Zipf(1.5) its
    // coverage of a 10k-object universe crawls even after 100k forwards.
    let objects = 10_000u64;
    let zipf = Zipf::new(objects, 1.5);
    let mut rng = Rng::new(17);
    let mut storefront = StorefrontObserver::new(objects);
    let mut coverage_at = Vec::new();
    for i in 1..=100_000u64 {
        storefront.forward(zipf.sample(&mut rng) - 1);
        if i.is_power_of_two() {
            coverage_at.push((i, storefront.coverage_fraction()));
        }
    }
    assert!(
        storefront.coverage_fraction() < 0.6,
        "storefront covered {}",
        storefront.coverage_fraction()
    );
    // Coverage per forwarded query decays: early queries discover new
    // objects almost every time, late ones mostly hit the cache.
    let per_request_rate = |w: &[(u64, f64)]| (w[1].1 - w[0].1) / (w[1].0 - w[0].0) as f64;
    let windows: Vec<&[(u64, f64)]> = coverage_at.windows(2).collect();
    let early = per_request_rate(windows[1]);
    let late = per_request_rate(windows[windows.len() - 1]);
    assert!(
        late < early / 10.0,
        "late rate {late} vs early rate {early}"
    );
}

#[test]
fn hybrid_policy_covers_both_skew_axes() {
    // A table where key 0 is access-hot but never updated, and key 1 is
    // update-hot but rarely read: the hybrid policy protects against
    // both extraction signals at once.
    let config = GuardConfig {
        policy: GuardPolicy::Hybrid(
            AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0),
            UpdateDelayPolicy::new(1.0).with_cap(10.0),
        ),
        charging: ChargingModel::PerTupleSum,
        access_decay_rate: 1.0,
        update_decay_rate: 1.0,
        ..GuardConfig::paper_default()
    };
    let db = GuardedDatabase::new(config);
    db.execute_at("CREATE TABLE t (id INT NOT NULL, v TEXT)", 0.0)
        .unwrap();
    db.execute_at("CREATE UNIQUE INDEX t_pk ON t (id)", 0.0)
        .unwrap();
    for i in 0..50 {
        db.execute_at(&format!("INSERT INTO t VALUES ({i}, 'v')"), 0.0)
            .unwrap();
    }
    // Key 0: heavy reads. Key 1: heavy updates.
    for t in 0..300 {
        db.execute_at("SELECT * FROM t WHERE id = 0", t as f64)
            .unwrap();
        db.execute_at("UPDATE t SET v = 'u' WHERE id = 1", t as f64)
            .unwrap();
    }
    let read_hot = db
        .execute_at("SELECT * FROM t WHERE id = 0", 400.0)
        .unwrap();
    let update_hot = db
        .execute_at("SELECT * FROM t WHERE id = 1", 400.0)
        .unwrap();
    let cold = db
        .execute_at("SELECT * FROM t WHERE id = 30", 400.0)
        .unwrap();
    // Key 0 is access-popular but update-cold: the hybrid still charges
    // the update cap (freshness defense dominates).
    assert_eq!(read_hot.delay_secs, 10.0);
    // Key 1 is update-hot but access-cold: access cap dominates.
    assert_eq!(update_hot.delay_secs, 10.0);
    // Key 30 is cold on both axes: capped either way.
    assert_eq!(cold.delay_secs, 10.0);
}

#[test]
fn update_rate_defense_under_uniform_access() {
    // The §3 scenario end-to-end: uniform access gives the access scheme
    // nothing, but update skew still penalizes extraction with staleness.
    let n = 20_000u64;
    let rates = UpdateRates::zipf(n, 1.0, n as f64, 3);
    let policy = UpdateDelayPolicy::for_staleness(0.6, 1.0).with_cap(10.0);
    let report = extract_update_based(&rates, &policy, ExtractionOrder::Sequential);
    let stale = report.schedule.paper_stale_fraction(&rates);
    assert!(
        (stale - 0.6).abs() < 0.05,
        "staleness guarantee missed: {stale}"
    );
    // Median uniform user sees a tiny delay.
    let med = delayguard::sim::uniform_user_median_delay(&rates, &policy);
    assert!(med < 0.01, "median {med}");
}
