//! Durability integration: snapshot + WAL recovery reproduces a database
//! that crashed mid-workload.

use delayguard::query::Engine;
use delayguard::storage::wal::{read_log, recover, Wal, WalRecord};
use delayguard::storage::{persist, Row, Value};
use std::sync::Arc;

fn schema_sql() -> &'static str {
    "CREATE TABLE ledger (id INT NOT NULL, balance INT NOT NULL)"
}

#[test]
fn snapshot_plus_wal_equals_crash_recovery() {
    let dir = std::env::temp_dir().join(format!("dg-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("base.dgsnap");
    let wal_path = dir.join("tail.wal");
    std::fs::remove_file(&wal_path).ok();

    // Phase 1: build a base database and snapshot it.
    let engine = Engine::new();
    engine.execute(schema_sql()).unwrap();
    engine
        .execute("CREATE UNIQUE INDEX ledger_pk ON ledger (id)")
        .unwrap();
    for i in 0..100 {
        engine
            .execute(&format!("INSERT INTO ledger VALUES ({i}, 1000)"))
            .unwrap();
    }
    persist::save(engine.catalog(), &snap_path).unwrap();

    // Phase 2: keep mutating, logging every mutation to the WAL.
    let mut wal = Wal::open(&wal_path).unwrap();
    wal.append(&WalRecord::Checkpoint).unwrap();
    let table = engine.catalog().table("ledger").unwrap();
    for i in 100..150 {
        let row = Row::new(vec![Value::Int(i), Value::Int(500)]);
        table.write().insert(row.clone()).unwrap();
        wal.append(&WalRecord::Insert {
            table: "ledger".into(),
            row,
        })
        .unwrap();
    }
    // An update and a delete, logged by rid.
    let rid = {
        let t = table.read();
        let id_col = t.schema().index_of("id").unwrap();
        t.index_lookup(&[id_col], &vec![Value::Int(10)]).unwrap()[0]
    };
    let new_row = Row::new(vec![Value::Int(10), Value::Int(9999)]);
    table.write().update(rid, new_row.clone()).unwrap();
    wal.append(&WalRecord::Update {
        table: "ledger".into(),
        rid,
        row: new_row,
    })
    .unwrap();
    wal.sync().unwrap();
    // "Crash": drop the live engine.
    drop(engine);

    // Phase 3: recover = load snapshot, replay the WAL tail.
    let catalog = persist::load(&snap_path).unwrap();
    let applied = recover(&catalog, &read_log(&wal_path).unwrap()).unwrap();
    assert_eq!(applied, 51);
    let recovered = Engine::with_catalog(Arc::new(catalog));
    assert_eq!(recovered.query("SELECT * FROM ledger").unwrap().len(), 150);
    let hit = recovered
        .query("SELECT balance FROM ledger WHERE id = 10")
        .unwrap();
    assert_eq!(hit.rows[0].1.get(0), Some(&Value::Int(9999)));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_loses_only_the_last_record() {
    let dir = std::env::temp_dir().join(format!("dg-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("torn.wal");
    std::fs::remove_file(&wal_path).ok();

    {
        let mut wal = Wal::open(&wal_path).unwrap();
        for i in 0..5 {
            wal.append(&WalRecord::Insert {
                table: "ledger".into(),
                row: Row::new(vec![Value::Int(i), Value::Int(0)]),
            })
            .unwrap();
        }
        wal.sync().unwrap();
    }
    // Simulate a crash mid-append of record 5.
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let cut = bytes.len() - 5;
    bytes.truncate(cut);
    std::fs::write(&wal_path, &bytes).unwrap();

    let engine = Engine::new();
    engine.execute(schema_sql()).unwrap();
    let records = read_log(&wal_path).unwrap();
    assert_eq!(records.len(), 4, "intact prefix only");
    let applied = recover(engine.catalog(), &records).unwrap();
    assert_eq!(applied, 4);
    assert_eq!(engine.query("SELECT * FROM ledger").unwrap().len(), 4);

    std::fs::remove_dir_all(&dir).ok();
}
