//! Snapshot persistence across the whole stack: data, indexes, and stats
//! survive a save/load cycle, and a reloaded engine serves identical
//! results.

use delayguard::query::Engine;
use delayguard::storage::{persist, Catalog};
use std::sync::Arc;

fn populated_engine() -> Engine {
    let e = Engine::new();
    e.execute("CREATE TABLE movies (id INT NOT NULL, title TEXT NOT NULL, gross FLOAT)")
        .unwrap();
    e.execute("CREATE UNIQUE INDEX movies_pk ON movies (id)")
        .unwrap();
    e.execute("CREATE INDEX movies_gross ON movies (gross)")
        .unwrap();
    for i in 0..1_000 {
        e.execute(&format!(
            "INSERT INTO movies VALUES ({i}, 'movie-{i}', {}.25)",
            i % 97
        ))
        .unwrap();
    }
    e.execute("DELETE FROM movies WHERE id >= 900").unwrap();
    e.execute("UPDATE movies SET gross = 999.0 WHERE id = 42")
        .unwrap();
    e
}

#[test]
fn snapshot_round_trip_preserves_query_results() {
    let e = populated_engine();
    let before = e
        .query("SELECT id, title FROM movies WHERE gross = 999.0")
        .unwrap();
    let bytes = persist::snapshot_bytes(e.catalog());
    let catalog: Catalog = persist::catalog_from_bytes(&bytes).unwrap();
    let e2 = Engine::with_catalog(Arc::new(catalog));
    let after = e2
        .query("SELECT id, title FROM movies WHERE gross = 999.0")
        .unwrap();
    assert_eq!(before.rows.len(), 1);
    assert_eq!(before.rows[0].1, after.rows[0].1);
    assert_eq!(
        e.query("SELECT * FROM movies").unwrap().len(),
        e2.query("SELECT * FROM movies").unwrap().len()
    );
    // Index-backed point query still works (indexes rebuilt on load).
    let point = e2.query("SELECT title FROM movies WHERE id = 7").unwrap();
    assert_eq!(point.len(), 1);
}

#[test]
fn snapshot_file_round_trip() {
    let dir = std::env::temp_dir().join(format!("dg-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.dgsnap");

    let e = populated_engine();
    persist::save(e.catalog(), &path).unwrap();
    let loaded = persist::load(&path).unwrap();
    let e2 = Engine::with_catalog(Arc::new(loaded));
    assert_eq!(e2.query("SELECT * FROM movies").unwrap().len(), 900);

    // Stats survive too.
    let t = e2.catalog().table("movies").unwrap();
    let stats = t.read().stats();
    assert_eq!(stats.inserts, 1_000);
    assert_eq!(stats.deletes, 100);
    assert_eq!(stats.updates, 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_detects_tampering() {
    let e = populated_engine();
    let mut bytes = persist::snapshot_bytes(e.catalog());
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x01;
    assert!(persist::catalog_from_bytes(&bytes).is_err());
}

#[test]
fn reloaded_engine_accepts_new_writes() {
    let e = populated_engine();
    let bytes = persist::snapshot_bytes(e.catalog());
    let e2 = Engine::with_catalog(Arc::new(persist::catalog_from_bytes(&bytes).unwrap()));
    e2.execute("INSERT INTO movies VALUES (5000, 'sequel', 1.0)")
        .unwrap();
    // Unique index still enforced after reload.
    assert!(e2
        .execute("INSERT INTO movies VALUES (5000, 'dup', 1.0)")
        .is_err());
    assert_eq!(e2.query("SELECT * FROM movies").unwrap().len(), 901);
}
