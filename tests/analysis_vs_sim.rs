//! Theory-versus-simulation cross-checks: the paper's closed forms
//! (Eq. 2–7, 11–12) must agree with the simulator on matched setups.

use delayguard::core::analysis;
use delayguard::core::{AccessDelayPolicy, UpdateDelayPolicy};
use delayguard::popularity::FrequencyTracker;
use delayguard::sim::{extract_update_based, median_of, replay_keys, DecayMode, ReplayConfig};
use delayguard::workload::{generalized_harmonic, ExtractionOrder, UpdateRates, Zipf};

/// Build a tracker holding the *exact* Zipf counts (no sampling noise) so
/// closed forms and the policy see the same world.
fn exact_zipf_tracker(n: u64, alpha: f64, total_requests: f64) -> FrequencyTracker {
    let zipf = Zipf::new(n, alpha);
    let mut t = FrequencyTracker::no_decay();
    for rank in 1..=n {
        // record_weighted keeps one "event" per call, so scale by count.
        let expected = zipf.probability(rank) * total_requests;
        t.record_weighted(rank - 1, expected);
    }
    t
}

#[test]
fn adversary_total_matches_eq6_with_exact_counts() {
    let (n, alpha, beta, cap) = (5_000u64, 1.5, 1.0, 10.0);
    let tracker = exact_zipf_tracker(n, alpha, 1.0);
    // With exact counts the measured fmax equals the Zipf fmax...
    let fmax_theory = 1.0 / generalized_harmonic(n, alpha);
    // (events = n here, so normalize the tracker's estimate accordingly.)
    let policy = AccessDelayPolicy::new(alpha, beta)
        .with_cap(cap)
        .with_fmax_mode(delayguard::core::access::FmaxMode::DecayedTotal);
    let measured = policy.adversary_total(&tracker, n);
    let theory = analysis::adversary_total_capped(n, alpha, beta, fmax_theory, cap);
    let rel = (measured - theory).abs() / theory;
    // Rank bucketing ties keys within ~1.6% count bands; the totals agree
    // within a few percent.
    assert!(
        rel < 0.05,
        "measured {measured} vs theory {theory} (rel {rel})"
    );
}

#[test]
fn median_request_rank_matches_eq3_exact_form() {
    let n = 50_000u64;
    for alpha in [0.5, 1.0, 1.5] {
        let zipf = Zipf::new(n, alpha);
        let exact = analysis::median_rank_exact(n, alpha);
        assert_eq!(
            zipf.median_rank(),
            exact,
            "alpha {alpha}: sampler and analysis disagree"
        );
    }
}

#[test]
fn replayed_median_tracks_analytic_median_delay() {
    // Replay a large synthetic trace, then compare the measured median
    // user delay against d(i_med) from Eq. 1 with learned fmax.
    let n = 2_000u64;
    let alpha = 1.5;
    let cfg = delayguard::workload::CalgaryConfig {
        objects: n,
        requests: 400_000,
        alpha,
        inter_arrival_secs: 1.0,
        seed: 4,
    };
    let policy = AccessDelayPolicy::new(alpha, 1.0).with_cap(10.0);
    let replay_cfg = ReplayConfig {
        policy,
        decay: DecayMode::PerRequest(1.0),
        pretrack_all: true,
    };
    let result = replay_keys(cfg.key_stream(), n, &replay_cfg, 1);
    // Steady state: use the last quarter of delays.
    let tail = &result.delays[result.delays.len() * 3 / 4..];
    let measured_median = median_of(tail.to_vec());
    let fmax = 1.0 / generalized_harmonic(n, alpha);
    let i_med = analysis::median_rank_exact(n, alpha);
    let analytic = analysis::delay_at_rank(n, alpha, 1.0, fmax, i_med).min(10.0);
    // Within a small factor: learned ranks and fmax carry sampling noise,
    // and rank ties shift the median request's rank by a few places.
    assert!(
        measured_median <= analytic * 8.0 && measured_median >= analytic / 8.0,
        "measured {measured_median} vs analytic {analytic}"
    );
}

#[test]
fn staleness_simulation_matches_eq11_exact_form() {
    let n = 20_000u64;
    for alpha in [0.5, 1.0, 2.0] {
        let c = 0.8;
        let rates = UpdateRates::zipf(n, alpha, n as f64, 5);
        let policy = UpdateDelayPolicy::new(c).with_cap(f64::INFINITY);
        let report = extract_update_based(&rates, &policy, ExtractionOrder::Sequential);
        let simulated = report.schedule.paper_stale_fraction(&rates);
        let exact = analysis::stale_fraction_exact(n, alpha, c);
        assert!(
            (simulated - exact).abs() < 0.03,
            "alpha {alpha}: simulated {simulated} vs exact {exact}"
        );
        // And Eq. 12's asymptotic form is close to the exact finite-n one.
        let asym = analysis::smax_asymptotic(alpha, c);
        assert!(
            (exact - asym).abs() < 0.05,
            "alpha {alpha}: exact {exact} vs asymptotic {asym}"
        );
    }
}

#[test]
fn delay_ratio_grows_orders_of_magnitude_in_n() {
    // The headline Eq. 4/7 claim: for alpha >= 1 the adversary-to-user
    // ratio explodes with database size even under a cap.
    let fmax = 0.3;
    let mut last = 0.0;
    for n in [1_000u64, 10_000, 100_000] {
        let r = analysis::delay_ratio(n, 1.5, 1.0, fmax, Some(10.0));
        assert!(r > last * 5.0, "ratio must grow strongly: {last} -> {r}");
        last = r;
    }
    assert!(last > 1e6, "at 100k tuples the ratio is enormous: {last}");
}

#[test]
fn sybil_economics_consistent_with_plan_partitioning() {
    use delayguard::workload::SybilPlan;
    // Uniform capped delays: k identities divide the wall clock by k, so
    // the optimum matches the closed form.
    let n = 10_000u64;
    let cap = 10.0;
    let total = n as f64 * cap;
    let t_register = 100.0;
    let (k_opt, wall_opt) = analysis::sybil_optimum(total, t_register);
    // Simulate the adversary at the analytic optimum fleet size.
    let plan = SybilPlan {
        identities: k_opt.round() as usize,
        order: ExtractionOrder::Sequential,
    };
    let extraction_wall = plan.wall_clock(n, |_| cap);
    let registration_wall = plan.identities as f64 * t_register;
    let simulated = extraction_wall + registration_wall;
    let rel = (simulated - wall_opt).abs() / wall_opt;
    assert!(
        rel < 0.05,
        "simulated {simulated} vs closed form {wall_opt}"
    );
}
