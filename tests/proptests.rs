//! Property-based tests over the core data structures and invariants.
//!
//! These were originally written against `proptest`; the build container
//! has no network access to crates.io (see `vendor/README.md`), so they
//! now use a small deterministic generator harness over the workspace's
//! own `delayguard::workload::Rng`. Every test runs a fixed number of
//! random cases from a fixed seed, so failures reproduce exactly.

use delayguard::popularity::{DecaySchedule, FrequencyTracker};
use delayguard::query::parse;
use delayguard::storage::codec::{decode_row, row_bytes};
use delayguard::storage::page::{Page, MAX_RECORD};
use delayguard::storage::{Row, Value};
use delayguard::workload::{Rng, Zipf};

const CASES: u64 = 128;

/// Run `body` for `CASES` seeded random cases.
fn cases(test_seed: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::new(test_seed ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        body(&mut rng);
    }
}

fn arb_bytes(rng: &mut Rng, max_len: u64) -> Vec<u8> {
    let len = rng.below(max_len + 1) as usize;
    (0..len).map(|_| rng.below(256) as u8).collect()
}

fn arb_text(rng: &mut Rng, max_len: u64) -> String {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| {
            // Mix ASCII with a few multi-byte code points.
            match rng.below(8) {
                0 => 'é',
                1 => '界',
                2 => '\u{1F600}',
                _ => (rng.range(0x20, 0x7e) as u8) as char,
            }
        })
        .collect()
}

fn arb_value(rng: &mut Rng) -> Value {
    match rng.below(7) {
        0 => Value::Null,
        1 => Value::Bool(rng.chance(0.5)),
        2 => Value::Int(rng.next_u64() as i64),
        3 => Value::Float(f64::from_bits(rng.next_u64())),
        4 => Value::Float(rng.f64_range(-1e9, 1e9)),
        5 => Value::Text(arb_text(rng, 40)),
        _ => Value::Bytes(arb_bytes(rng, 63)),
    }
}

fn arb_row(rng: &mut Rng) -> Row {
    let arity = rng.below(8) as usize;
    Row::new((0..arity).map(|_| arb_value(rng)).collect())
}

// ---- codec -------------------------------------------------------------

#[test]
fn codec_round_trips_any_row() {
    cases(0xC0DEC, |rng| {
        let row = arb_row(rng);
        let bytes = row_bytes(&row);
        let back = decode_row(&bytes).unwrap();
        // NaN-safe comparison via the total order on Value.
        assert_eq!(row.arity(), back.arity());
        for (a, b) in row.values().iter().zip(back.values()) {
            assert!(a.cmp(b) == std::cmp::Ordering::Equal, "{a:?} vs {b:?}");
        }
    });
}

#[test]
fn codec_never_panics_on_garbage() {
    cases(0xBAD5EED, |rng| {
        let bytes = arb_bytes(rng, 255);
        // Must return Ok or Err, never panic.
        let _ = decode_row(&bytes);
    });
}

// ---- value ordering -----------------------------------------------------

#[test]
fn value_order_is_total_and_antisymmetric() {
    use std::cmp::Ordering;
    cases(0x0BDE12, |rng| {
        let a = arb_value(rng);
        let b = arb_value(rng);
        match a.cmp(&b) {
            Ordering::Less => assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => assert_eq!(b.cmp(&a), Ordering::Equal),
        }
    });
}

#[test]
fn value_order_transitive() {
    cases(0x7A25, |rng| {
        let mut v = [arb_value(rng), arb_value(rng), arb_value(rng)];
        v.sort();
        assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    });
}

// ---- slotted page -------------------------------------------------------

#[test]
fn page_model_check() {
    cases(0x9A6E, |rng| {
        // Random insert/delete sequence cross-checked against a model map.
        let mut page = Page::new();
        let mut model: std::collections::HashMap<u16, Vec<u8>> = std::collections::HashMap::new();
        let ops = rng.below(60);
        for _ in 0..ops {
            let op = rng.below(256) as u8;
            let data = arb_bytes(rng, 299);
            if !op.is_multiple_of(3) || model.is_empty() {
                if let Some(slot) = page.insert(&data) {
                    model.insert(slot, data);
                }
            } else {
                let &slot = model.keys().next().unwrap();
                assert!(page.delete(slot));
                model.remove(&slot);
            }
            // Every model entry must be readable.
            for (slot, want) in &model {
                assert_eq!(page.get(*slot), Some(want.as_slice()));
            }
            assert_eq!(page.live_count(), model.len());
        }
        // Snapshot round trip preserves everything.
        let restored = Page::from_bytes(page.as_bytes()).unwrap();
        for (slot, want) in &model {
            assert_eq!(restored.get(*slot), Some(want.as_slice()));
        }
    });
}

#[test]
fn page_never_accepts_oversized() {
    cases(0x516, |rng| {
        let len = MAX_RECORD + 1 + rng.below(63) as usize;
        let data = vec![0xABu8; len];
        let mut page = Page::new();
        assert!(page.insert(&data).is_none());
    });
}

// ---- decayed counters ---------------------------------------------------

#[test]
fn tracker_total_equals_sum_of_counts() {
    cases(0x707A1, |rng| {
        let rate = rng.range(1000, 1100) as f64 / 1000.0;
        let n = rng.range(1, 500);
        let mut t = FrequencyTracker::new(DecaySchedule::new(rate));
        for _ in 0..n {
            t.record(rng.below(50));
        }
        let sum: f64 = t.iter().map(|(_, c)| c).sum();
        assert!((sum - t.total()).abs() <= t.total() * 1e-9 + 1e-12);
        assert_eq!(t.events(), n);
    });
}

#[test]
fn tracker_rank_consistent_with_exact() {
    cases(0x2A2C, |rng| {
        let n = rng.range(1, 400);
        let mut t = FrequencyTracker::no_decay();
        for _ in 0..n {
            t.record(rng.below(30));
        }
        for key in 0..30u64 {
            if t.contains(key) {
                let a = t.rank(key) as i64;
                let e = t.exact_rank(key) as i64;
                // Integer counts: same count -> same bucket, so the only
                // divergence is distinct counts sharing a log bucket.
                assert!((a - e).abs() <= 4, "key {key}: {a} vs {e}");
            }
        }
    });
}

#[test]
fn fmax_is_max_frequency() {
    cases(0xF4A0, |rng| {
        let n = rng.range(1, 300);
        let mut t = FrequencyTracker::no_decay();
        for _ in 0..n {
            t.record(rng.below(20));
        }
        let best = t.iter().map(|(k, _)| t.frequency(k)).fold(0.0, f64::max);
        assert!((t.fmax() - best).abs() < 1e-12);
        assert!(t.fmax() <= 1.0 + 1e-12);
    });
}

// ---- zipf ---------------------------------------------------------------

#[test]
fn zipf_cdf_well_formed() {
    cases(0x21FF, |rng| {
        let n = rng.range(1, 2_000);
        let alpha = rng.below(300) as f64 / 100.0;
        let z = Zipf::new(n, alpha);
        let total: f64 = (1..=n).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-6, "n={n} alpha={alpha}: {total}");
        let mut sample_rng = Rng::new(7);
        for _ in 0..50 {
            let s = z.sample(&mut sample_rng);
            assert!((1..=n).contains(&s));
        }
    });
}

// ---- SQL parser ---------------------------------------------------------

#[test]
fn parser_never_panics() {
    cases(0x50151, |rng| {
        let input = arb_text(rng, 80);
        let _ = parse(&input);
    });
}

#[test]
fn parser_accepts_generated_selects() {
    fn ident(rng: &mut Rng, max_extra: u64) -> String {
        let mut s = String::new();
        s.push((rng.range(b'a' as u64, b'z' as u64) as u8) as char);
        for _ in 0..rng.below(max_extra + 1) {
            let c = match rng.below(3) {
                0 => (rng.range(b'0' as u64, b'9' as u64) as u8) as char,
                1 => '_',
                _ => (rng.range(b'a' as u64, b'z' as u64) as u8) as char,
            };
            s.push(c);
        }
        s
    }
    cases(0x5E1EC7, |rng| {
        let table = ident(rng, 10);
        let col = ident(rng, 10);
        let v = rng.next_u64() as i32;
        let limit = rng.below(1000);
        let sql = format!("SELECT {col} FROM {table} WHERE {col} = {v} LIMIT {limit}");
        let stmt = parse(&sql).unwrap();
        match stmt {
            delayguard::query::ast::Statement::Select {
                table: t, limit: l, ..
            } => {
                assert_eq!(t, table);
                assert_eq!(l, Some(limit));
            }
            other => panic!("unexpected {other:?}"),
        }
    });
}

// ---- delay policy invariants --------------------------------------------

#[test]
fn delay_never_exceeds_cap_nor_negative() {
    use delayguard::core::AccessDelayPolicy;
    cases(0xCA9, |rng| {
        let cap = rng.below(20_000) as f64 / 1000.0;
        let n = rng.range(1, 200);
        let probe = rng.below(200);
        let mut t = FrequencyTracker::no_decay();
        for _ in 0..n {
            t.record(rng.below(100));
        }
        let policy = AccessDelayPolicy::new(1.5, 1.0).with_cap(cap);
        let d = policy.delay(&t, 100, probe);
        assert!(d >= 0.0);
        assert!(d <= cap + 1e-12);
    });
}

#[test]
fn charging_models_bounded_by_each_other() {
    use delayguard::core::ChargingModel;
    cases(0xC4A26E, |rng| {
        let n = rng.below(50) as usize;
        let delays: Vec<f64> = (0..n).map(|_| rng.f64_range(0.0, 10.0)).collect();
        let sum = ChargingModel::PerTupleSum.combine(delays.iter().copied());
        let max = ChargingModel::PerQueryMax.combine(delays.iter().copied());
        assert!(max <= sum + 1e-12);
        if let Some(&first) = delays.first() {
            assert!(max >= first - 1e-12 || max >= 0.0);
        }
    });
}
