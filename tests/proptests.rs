//! Property-based tests over the core data structures and invariants.
//!
//! These were originally written against `proptest`; the build container
//! has no network access to crates.io (see `vendor/README.md`), so they
//! now use a small deterministic generator harness over the workspace's
//! own `delayguard::workload::Rng`. Every test runs a fixed number of
//! random cases from a fixed seed, so failures reproduce exactly.

use delayguard::popularity::{DecaySchedule, FrequencyTracker};
use delayguard::query::parse;
use delayguard::storage::codec::{decode_row, row_bytes};
use delayguard::storage::page::{Page, MAX_RECORD};
use delayguard::storage::{Row, Value};
use delayguard::workload::{Rng, Zipf};

const CASES: u64 = 128;

/// Run `body` for `CASES` seeded random cases.
fn cases(test_seed: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::new(test_seed ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        body(&mut rng);
    }
}

fn arb_bytes(rng: &mut Rng, max_len: u64) -> Vec<u8> {
    let len = rng.below(max_len + 1) as usize;
    (0..len).map(|_| rng.below(256) as u8).collect()
}

fn arb_text(rng: &mut Rng, max_len: u64) -> String {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| {
            // Mix ASCII with a few multi-byte code points.
            match rng.below(8) {
                0 => 'é',
                1 => '界',
                2 => '\u{1F600}',
                _ => (rng.range(0x20, 0x7e) as u8) as char,
            }
        })
        .collect()
}

fn arb_value(rng: &mut Rng) -> Value {
    match rng.below(7) {
        0 => Value::Null,
        1 => Value::Bool(rng.chance(0.5)),
        2 => Value::Int(rng.next_u64() as i64),
        3 => Value::Float(f64::from_bits(rng.next_u64())),
        4 => Value::Float(rng.f64_range(-1e9, 1e9)),
        5 => Value::Text(arb_text(rng, 40)),
        _ => Value::Bytes(arb_bytes(rng, 63)),
    }
}

fn arb_row(rng: &mut Rng) -> Row {
    let arity = rng.below(8) as usize;
    Row::new((0..arity).map(|_| arb_value(rng)).collect())
}

// ---- codec -------------------------------------------------------------

#[test]
fn codec_round_trips_any_row() {
    cases(0xC0DEC, |rng| {
        let row = arb_row(rng);
        let bytes = row_bytes(&row);
        let back = decode_row(&bytes).unwrap();
        // NaN-safe comparison via the total order on Value.
        assert_eq!(row.arity(), back.arity());
        for (a, b) in row.values().iter().zip(back.values()) {
            assert!(a.cmp(b) == std::cmp::Ordering::Equal, "{a:?} vs {b:?}");
        }
    });
}

#[test]
fn codec_never_panics_on_garbage() {
    cases(0xBAD5EED, |rng| {
        let bytes = arb_bytes(rng, 255);
        // Must return Ok or Err, never panic.
        let _ = decode_row(&bytes);
    });
}

// ---- value ordering -----------------------------------------------------

#[test]
fn value_order_is_total_and_antisymmetric() {
    use std::cmp::Ordering;
    cases(0x0BDE12, |rng| {
        let a = arb_value(rng);
        let b = arb_value(rng);
        match a.cmp(&b) {
            Ordering::Less => assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => assert_eq!(b.cmp(&a), Ordering::Equal),
        }
    });
}

#[test]
fn value_order_transitive() {
    cases(0x7A25, |rng| {
        let mut v = [arb_value(rng), arb_value(rng), arb_value(rng)];
        v.sort();
        assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    });
}

// ---- slotted page -------------------------------------------------------

#[test]
fn page_model_check() {
    cases(0x9A6E, |rng| {
        // Random insert/delete sequence cross-checked against a model map.
        let mut page = Page::new();
        let mut model: std::collections::HashMap<u16, Vec<u8>> = std::collections::HashMap::new();
        let ops = rng.below(60);
        for _ in 0..ops {
            let op = rng.below(256) as u8;
            let data = arb_bytes(rng, 299);
            if !op.is_multiple_of(3) || model.is_empty() {
                if let Some(slot) = page.insert(&data) {
                    model.insert(slot, data);
                }
            } else {
                let &slot = model.keys().next().unwrap();
                assert!(page.delete(slot));
                model.remove(&slot);
            }
            // Every model entry must be readable.
            for (slot, want) in &model {
                assert_eq!(page.get(*slot), Some(want.as_slice()));
            }
            assert_eq!(page.live_count(), model.len());
        }
        // Snapshot round trip preserves everything.
        let restored = Page::from_bytes(page.as_bytes()).unwrap();
        for (slot, want) in &model {
            assert_eq!(restored.get(*slot), Some(want.as_slice()));
        }
    });
}

#[test]
fn page_never_accepts_oversized() {
    cases(0x516, |rng| {
        let len = MAX_RECORD + 1 + rng.below(63) as usize;
        let data = vec![0xABu8; len];
        let mut page = Page::new();
        assert!(page.insert(&data).is_none());
    });
}

// ---- decayed counters ---------------------------------------------------

#[test]
fn tracker_total_equals_sum_of_counts() {
    cases(0x707A1, |rng| {
        let rate = rng.range(1000, 1100) as f64 / 1000.0;
        let n = rng.range(1, 500);
        let mut t = FrequencyTracker::new(DecaySchedule::new(rate));
        for _ in 0..n {
            t.record(rng.below(50));
        }
        let sum: f64 = t.iter().map(|(_, c)| c).sum();
        assert!((sum - t.total()).abs() <= t.total() * 1e-9 + 1e-12);
        assert_eq!(t.events(), n);
    });
}

#[test]
fn tracker_rank_consistent_with_exact() {
    cases(0x2A2C, |rng| {
        let n = rng.range(1, 400);
        let mut t = FrequencyTracker::no_decay();
        for _ in 0..n {
            t.record(rng.below(30));
        }
        for key in 0..30u64 {
            if t.contains(key) {
                let a = t.rank(key) as i64;
                let e = t.exact_rank(key) as i64;
                // Integer counts: same count -> same bucket, so the only
                // divergence is distinct counts sharing a log bucket.
                assert!((a - e).abs() <= 4, "key {key}: {a} vs {e}");
            }
        }
    });
}

#[test]
fn fmax_is_max_frequency() {
    cases(0xF4A0, |rng| {
        let n = rng.range(1, 300);
        let mut t = FrequencyTracker::no_decay();
        for _ in 0..n {
            t.record(rng.below(20));
        }
        let best = t.iter().map(|(k, _)| t.frequency(k)).fold(0.0, f64::max);
        assert!((t.fmax() - best).abs() < 1e-12);
        assert!(t.fmax() <= 1.0 + 1e-12);
    });
}

// ---- zipf ---------------------------------------------------------------

#[test]
fn zipf_cdf_well_formed() {
    cases(0x21FF, |rng| {
        let n = rng.range(1, 2_000);
        let alpha = rng.below(300) as f64 / 100.0;
        let z = Zipf::new(n, alpha);
        let total: f64 = (1..=n).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-6, "n={n} alpha={alpha}: {total}");
        let mut sample_rng = Rng::new(7);
        for _ in 0..50 {
            let s = z.sample(&mut sample_rng);
            assert!((1..=n).contains(&s));
        }
    });
}

// ---- SQL parser ---------------------------------------------------------

#[test]
fn parser_never_panics() {
    cases(0x50151, |rng| {
        let input = arb_text(rng, 80);
        let _ = parse(&input);
    });
}

#[test]
fn parser_accepts_generated_selects() {
    fn ident(rng: &mut Rng, max_extra: u64) -> String {
        let mut s = String::new();
        s.push((rng.range(b'a' as u64, b'z' as u64) as u8) as char);
        for _ in 0..rng.below(max_extra + 1) {
            let c = match rng.below(3) {
                0 => (rng.range(b'0' as u64, b'9' as u64) as u8) as char,
                1 => '_',
                _ => (rng.range(b'a' as u64, b'z' as u64) as u8) as char,
            };
            s.push(c);
        }
        s
    }
    cases(0x5E1EC7, |rng| {
        let table = ident(rng, 10);
        let col = ident(rng, 10);
        let v = rng.next_u64() as i32;
        let limit = rng.below(1000);
        let sql = format!("SELECT {col} FROM {table} WHERE {col} = {v} LIMIT {limit}");
        let stmt = parse(&sql).unwrap();
        match stmt {
            delayguard::query::ast::Statement::Select {
                table: t, limit: l, ..
            } => {
                assert_eq!(t, table);
                assert_eq!(l, Some(limit));
            }
            other => panic!("unexpected {other:?}"),
        }
    });
}

// ---- delay policy invariants --------------------------------------------

#[test]
fn delay_never_exceeds_cap_nor_negative() {
    use delayguard::core::AccessDelayPolicy;
    cases(0xCA9, |rng| {
        let cap = rng.below(20_000) as f64 / 1000.0;
        let n = rng.range(1, 200);
        let probe = rng.below(200);
        let mut t = FrequencyTracker::no_decay();
        for _ in 0..n {
            t.record(rng.below(100));
        }
        let policy = AccessDelayPolicy::new(1.5, 1.0).with_cap(cap);
        let d = policy.delay(&t, 100, probe);
        assert!(d >= 0.0);
        assert!(d <= cap + 1e-12);
    });
}

// ---- streaming execution pipeline ---------------------------------------

/// The materialized deadline path is a drain of the streaming pipeline;
/// this cross-checks the two end to end on random Zipf workloads: every
/// query on database A runs through `execute_with_deadline`, the same
/// query on identically-seeded database B through `execute_streaming`
/// drained in random-sized chunks. Rows, per-tuple delays, release
/// offsets, and the combined delay must be bit-identical — and stay
/// identical across queries, which proves the chunked path records the
/// same popularity mutations as the one-shot path. Occasionally a query
/// is dropped mid-stream on both sides (a client hanging up after k
/// chunks); the charged prefix must match and later queries still agree.
#[test]
fn streaming_execution_matches_materialized() {
    use delayguard::core::clock::ManualClock;
    use delayguard::core::{
        ChargingModel, DeadlineResponse, GuardConfig, GuardedDatabase, ReadPath, SnapshotPolicy,
        StreamedQuery,
    };
    use delayguard::query::StatementOutput;
    use std::sync::Arc;

    /// Drain a streaming query in chunks of `chunk_rows`, stopping after
    /// `drop_after` charged chunks if set; mirrors the materialized
    /// response shape for comparison.
    fn drain_streaming(
        db: &GuardedDatabase,
        sql: &str,
        chunk_rows: usize,
        drop_after: Option<usize>,
    ) -> DeadlineResponse {
        db.execute_streaming(sql, |query| match query {
            StreamedQuery::Rows(mut stream) => {
                let mut rows = Vec::new();
                let mut delays = Vec::new();
                let mut offsets = Vec::new();
                let mut chunks = 0;
                while let Some(chunk) = stream.next_chunk(chunk_rows).unwrap() {
                    if drop_after == Some(chunks) {
                        break;
                    }
                    let charged = stream.charge(&chunk);
                    delays.extend(charged.delays);
                    offsets.extend(charged.offsets);
                    rows.extend(chunk);
                    chunks += 1;
                }
                assert_eq!(stream.tuples_charged() as usize, delays.len());
                DeadlineResponse {
                    output: StatementOutput::Rows(delayguard::query::SelectOutput {
                        columns: stream.columns().to_vec(),
                        rows,
                    }),
                    tuple_delays: delays,
                    tuple_offsets: offsets,
                    delay_secs: stream.delay_secs(),
                    issued_at_nanos: stream.issued_at_nanos(),
                }
            }
            StreamedQuery::Finished(resp) => resp,
        })
        .unwrap()
    }

    fn assert_bit_equal(a: &DeadlineResponse, b: &DeadlineResponse, ctx: &str) {
        match (&a.output, &b.output) {
            (StatementOutput::Rows(ra), StatementOutput::Rows(rb)) => {
                assert_eq!(ra.columns, rb.columns, "{ctx}: columns");
                assert_eq!(ra.rows.len(), rb.rows.len(), "{ctx}: row count");
                for ((ida, rowa), (idb, rowb)) in ra.rows.iter().zip(&rb.rows) {
                    assert_eq!(ida, idb, "{ctx}: row id");
                    assert_eq!(rowa.values(), rowb.values(), "{ctx}: row payload");
                }
            }
            (oa, ob) => panic!("{ctx}: non-row outputs {oa:?} vs {ob:?}"),
        }
        let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&a.tuple_delays),
            bits(&b.tuple_delays),
            "{ctx}: delays"
        );
        assert_eq!(
            bits(&a.tuple_offsets),
            bits(&b.tuple_offsets),
            "{ctx}: offsets"
        );
        assert_eq!(
            a.delay_secs.to_bits(),
            b.delay_secs.to_bits(),
            "{ctx}: combined delay"
        );
        assert_eq!(a.issued_at_nanos, b.issued_at_nanos, "{ctx}: issue time");
        assert_eq!(a.deadline_nanos(), b.deadline_nanos(), "{ctx}: deadline");
    }

    cases(0x57EEA, |rng| {
        // Random but shared configuration for the pair of databases.
        let charging = if rng.chance(0.5) {
            ChargingModel::PerTupleSum
        } else {
            ChargingModel::PerQueryMax
        };
        let read_path = if rng.chance(0.5) {
            ReadPath::Snapshot
        } else {
            ReadPath::Locked
        };
        let config = GuardConfig::paper_default()
            .with_charging(charging)
            .with_read_path(read_path)
            // Refresh after every statement so the chunked path (one
            // recorded event per chunk) and the one-shot path (one event
            // per statement) apply their mutations at the same points.
            .with_snapshot_policy(SnapshotPolicy {
                max_pending_events: 1,
                ..SnapshotPolicy::default()
            });
        let clock_a = Arc::new(ManualClock::new());
        let clock_b = Arc::new(ManualClock::new());
        let db_a = GuardedDatabase::with_engine_and_clock(
            delayguard::query::Engine::new(),
            config,
            Arc::clone(&clock_a) as Arc<dyn delayguard::core::Clock>,
        );
        let db_b = GuardedDatabase::with_engine_and_clock(
            delayguard::query::Engine::new(),
            config,
            Arc::clone(&clock_b) as Arc<dyn delayguard::core::Clock>,
        );

        // Identical schema and contents on both sides.
        let n_rows = rng.range(1, 40);
        for sql in [
            "CREATE TABLE t (id INT NOT NULL, grp INT NOT NULL, note TEXT NOT NULL)",
            "CREATE UNIQUE INDEX t_pk ON t (id)",
        ] {
            db_a.execute_with_deadline(sql).unwrap();
            db_b.execute_with_deadline(sql).unwrap();
        }
        for id in 0..n_rows {
            let sql = format!("INSERT INTO t VALUES ({id}, {}, 'n-{id}')", id % 5);
            db_a.execute_with_deadline(&sql).unwrap();
            db_b.execute_with_deadline(&sql).unwrap();
        }

        // A Zipf-skewed query mix, advancing both clocks in lockstep.
        let zipf = Zipf::new(n_rows.max(1), 1.1);
        let n_queries = rng.range(3, 12);
        for q in 0..n_queries {
            let dt = rng.below(2_000_000_000);
            clock_a.advance_nanos(dt);
            clock_b.advance_nanos(dt);
            let sql = match rng.below(5) {
                0 => "SELECT * FROM t".to_string(),
                1 => format!("SELECT id, note FROM t WHERE id = {}", zipf.sample(rng) - 1),
                2 => format!("SELECT * FROM t WHERE grp = {}", rng.below(5)),
                3 => format!(
                    "SELECT * FROM t ORDER BY id DESC LIMIT {}",
                    rng.range(1, 10)
                ),
                _ => format!("SELECT note FROM t WHERE id < {}", zipf.sample(rng)),
            };
            let chunk_rows = rng.range(1, 8) as usize;
            if rng.chance(0.15) {
                // Mid-stream drop, mirrored on both sides: only the
                // charged prefix may have been recorded.
                let k = rng.below(4) as usize;
                let a = drain_streaming(&db_a, &sql, chunk_rows, Some(k));
                let b = drain_streaming(&db_b, &sql, chunk_rows, Some(k));
                assert_bit_equal(&a, &b, &format!("query {q} (dropped after {k})"));
                assert!(a.tuple_delays.len() <= k * chunk_rows);
            } else {
                let a = db_a.execute_with_deadline(&sql).unwrap();
                let b = drain_streaming(&db_b, &sql, chunk_rows, None);
                assert_bit_equal(&a, &b, &format!("query {q} ({sql})"));
            }
        }
    });
}

#[test]
fn charging_models_bounded_by_each_other() {
    use delayguard::core::ChargingModel;
    cases(0xC4A26E, |rng| {
        let n = rng.below(50) as usize;
        let delays: Vec<f64> = (0..n).map(|_| rng.f64_range(0.0, 10.0)).collect();
        let sum = ChargingModel::PerTupleSum.combine(delays.iter().copied());
        let max = ChargingModel::PerQueryMax.combine(delays.iter().copied());
        assert!(max <= sum + 1e-12);
        if let Some(&first) = delays.first() {
            assert!(max >= first - 1e-12 || max >= 0.0);
        }
    });
}
