//! Property-based tests over the core data structures and invariants.

use delayguard::popularity::{DecaySchedule, FrequencyTracker};
use delayguard::query::parse;
use delayguard::storage::codec::{decode_row, row_bytes};
use delayguard::storage::page::{Page, MAX_RECORD};
use delayguard::storage::{Row, Value};
use delayguard::workload::{Rng, Zipf};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        ".{0,40}".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    proptest::collection::vec(arb_value(), 0..8).prop_map(Row::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- codec -------------------------------------------------------

    #[test]
    fn codec_round_trips_any_row(row in arb_row()) {
        let bytes = row_bytes(&row);
        let back = decode_row(&bytes).unwrap();
        // NaN-safe comparison via the total order on Value.
        prop_assert_eq!(row.arity(), back.arity());
        for (a, b) in row.values().iter().zip(back.values()) {
            prop_assert!(a.cmp(b) == std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn codec_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must return Ok or Err, never panic.
        let _ = decode_row(&bytes);
    }

    // ---- value ordering ------------------------------------------------

    #[test]
    fn value_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
    }

    #[test]
    fn value_order_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    // ---- slotted page ---------------------------------------------------

    #[test]
    fn page_model_check(ops in proptest::collection::vec(
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..300)), 0..60)
    ) {
        // Random insert/delete sequence cross-checked against a model map.
        let mut page = Page::new();
        let mut model: std::collections::HashMap<u16, Vec<u8>> =
            std::collections::HashMap::new();
        for (op, data) in ops {
            if op % 3 != 0 || model.is_empty() {
                if let Some(slot) = page.insert(&data) {
                    model.insert(slot, data);
                }
            } else {
                let &slot = model.keys().next().unwrap();
                prop_assert!(page.delete(slot));
                model.remove(&slot);
            }
            // Every model entry must be readable.
            for (slot, want) in &model {
                prop_assert_eq!(page.get(*slot), Some(want.as_slice()));
            }
            prop_assert_eq!(page.live_count(), model.len());
        }
        // Snapshot round trip preserves everything.
        let restored = Page::from_bytes(page.as_bytes()).unwrap();
        for (slot, want) in &model {
            prop_assert_eq!(restored.get(*slot), Some(want.as_slice()));
        }
    }

    #[test]
    fn page_never_accepts_oversized(data in proptest::collection::vec(any::<u8>(), MAX_RECORD+1..MAX_RECORD+64)) {
        let mut page = Page::new();
        prop_assert!(page.insert(&data).is_none());
    }

    // ---- decayed counters ----------------------------------------------

    #[test]
    fn tracker_total_equals_sum_of_counts(
        keys in proptest::collection::vec(0u64..50, 1..500),
        rate_milli in 1000u32..1100,
    ) {
        let rate = rate_milli as f64 / 1000.0;
        let mut t = FrequencyTracker::new(DecaySchedule::new(rate));
        for &k in &keys {
            t.record(k);
        }
        let sum: f64 = t.iter().map(|(_, c)| c).sum();
        prop_assert!((sum - t.total()).abs() <= t.total() * 1e-9 + 1e-12);
        prop_assert_eq!(t.events(), keys.len() as u64);
    }

    #[test]
    fn tracker_rank_consistent_with_exact(
        keys in proptest::collection::vec(0u64..30, 1..400),
    ) {
        let mut t = FrequencyTracker::no_decay();
        for &k in &keys {
            t.record(k);
        }
        for key in 0..30u64 {
            if t.contains(key) {
                let a = t.rank(key) as i64;
                let e = t.exact_rank(key) as i64;
                // Integer counts: same count -> same bucket, so the only
                // divergence is distinct counts sharing a log bucket.
                prop_assert!((a - e).abs() <= 4, "key {}: {} vs {}", key, a, e);
            }
        }
    }

    #[test]
    fn fmax_is_max_frequency(keys in proptest::collection::vec(0u64..20, 1..300)) {
        let mut t = FrequencyTracker::no_decay();
        for &k in &keys {
            t.record(k);
        }
        let best = t.iter().map(|(k, _)| t.frequency(k)).fold(0.0, f64::max);
        prop_assert!((t.fmax() - best).abs() < 1e-12);
        prop_assert!(t.fmax() <= 1.0 + 1e-12);
    }

    // ---- zipf -----------------------------------------------------------

    #[test]
    fn zipf_cdf_well_formed(n in 1u64..2_000, alpha_pct in 0u32..300) {
        let alpha = alpha_pct as f64 / 100.0;
        let z = Zipf::new(n, alpha);
        let total: f64 = (1..=n).map(|i| z.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        let mut rng = Rng::new(7);
        for _ in 0..50 {
            let s = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&s));
        }
    }

    // ---- SQL parser ------------------------------------------------------

    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_accepts_generated_selects(
        table in "[a-z][a-z0-9_]{0,10}",
        col in "[a-z][a-z_]{0,10}",
        v in any::<i32>(),
        limit in 0u64..1000,
    ) {
        let sql = format!("SELECT {col} FROM {table} WHERE {col} = {v} LIMIT {limit}");
        let stmt = parse(&sql).unwrap();
        match stmt {
            delayguard::query::ast::Statement::Select { table: t, limit: l, .. } => {
                prop_assert_eq!(t, table);
                prop_assert_eq!(l, Some(limit));
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    // ---- delay policy invariants -----------------------------------------

    #[test]
    fn delay_never_exceeds_cap_nor_negative(
        keys in proptest::collection::vec(0u64..100, 1..200),
        cap_milli in 0u64..20_000,
        probe in 0u64..200,
    ) {
        use delayguard::core::AccessDelayPolicy;
        let cap = cap_milli as f64 / 1000.0;
        let mut t = FrequencyTracker::no_decay();
        for &k in &keys {
            t.record(k);
        }
        let policy = AccessDelayPolicy::new(1.5, 1.0).with_cap(cap);
        let d = policy.delay(&t, 100, probe);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= cap + 1e-12);
    }

    #[test]
    fn charging_models_bounded_by_each_other(
        delays in proptest::collection::vec(0.0f64..10.0, 0..50),
    ) {
        use delayguard::core::ChargingModel;
        let sum = ChargingModel::PerTupleSum.combine(delays.iter().copied());
        let max = ChargingModel::PerQueryMax.combine(delays.iter().copied());
        prop_assert!(max <= sum + 1e-12);
        if let Some(&first) = delays.first() {
            prop_assert!(max >= first - 1e-12 || max >= 0.0);
        }
    }
}
